"""The timed simulator: executions over delayed-message runs.

Identical to the synchronous simulator except that a message generated
in round ``s`` (from the sender's end-of-round ``s - 1`` state) is
handed to the receiver at the end of its recorded arrival round.  A
receiver may therefore get several messages from the same sender in
one round (e.g. a delayed one and a fresh one together); the inbox is
ordered by ``(sender, sent round)`` for determinism.

The paper's protocols run unmodified on top: their transition
functions already tolerate arbitrary message multisets per round
(Protocol S's ``PROCESS-MESSAGE`` merges by maximum count, stale
messages are harmless), which is what makes the asynchronous extension
"clear" in the authors' words — and checkable here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.protocol import LocalProtocol, Protocol, ReceivedMessage
from ..core.randomness import Tapes
from ..core.topology import Topology
from ..core.types import ProcessId, Round
from .run import TimedRun


def timed_decide(
    protocol: Protocol,
    topology: Topology,
    run: TimedRun,
    tapes: Tapes,
) -> Tuple[bool, ...]:
    """The output vector of one timed execution."""
    outputs, _ = timed_execute_counts(protocol, topology, run, tapes)
    return outputs


def timed_execute_counts(
    protocol: Protocol,
    topology: Topology,
    run: TimedRun,
    tapes: Tapes,
):
    """Run the timed execution; return (outputs, per-round final states).

    Returns the output vector and, for invariant checking, the list of
    each process's states at the end of every round (index 0 is the
    start state).
    """
    if not protocol.supports_topology(topology):
        raise ValueError(
            f"protocol {protocol.name!r} is not defined on {topology.describe()}"
        )
    run.validate_for(topology)
    processes = list(topology.processes)
    locals_: Dict[ProcessId, LocalProtocol] = {
        i: protocol.local_protocol(i, topology) for i in processes
    }
    states: Dict[ProcessId, object] = {
        i: locals_[i].initial_state(run.has_input(i), tapes.get(i))
        for i in processes
    }
    history: Dict[ProcessId, List[object]] = {i: [states[i]] for i in processes}

    # Payloads in flight: arrival round -> list of (target, sender, sent, payload).
    in_flight: Dict[Round, List[Tuple[ProcessId, ProcessId, Round, object]]] = {}
    arrivals_wanted = {
        (d.source, d.target, d.sent): d.arrival for d in run.deliveries
    }

    for round_number in range(1, run.num_rounds + 1):
        for sender in processes:
            for neighbor in topology.neighbors(sender):
                arrival = arrivals_wanted.get((sender, neighbor, round_number))
                if arrival is None:
                    continue
                payload = locals_[sender].message(states[sender], neighbor)
                if payload is not None:
                    in_flight.setdefault(arrival, []).append(
                        (neighbor, sender, round_number, payload)
                    )
        landing = sorted(
            in_flight.pop(round_number, []),
            key=lambda record: (record[0], record[1], record[2]),
        )
        inboxes: Dict[ProcessId, List[ReceivedMessage]] = {
            i: [] for i in processes
        }
        for target, sender, _, payload in landing:
            inboxes[target].append(ReceivedMessage(sender, payload))
        for process in processes:
            states[process] = locals_[process].transition(
                states[process],
                round_number,
                tuple(inboxes[process]),
                tapes.get(process),
            )
            history[process].append(states[process])

    outputs = tuple(bool(locals_[i].output(states[i])) for i in processes)
    return outputs, history
