"""Engine-facing counter-abstraction evaluation.

Two entry points share the lumped kernels:

* :func:`evaluate_counter` — the **concrete** path.  Takes the same
  ``(protocol, topology, run)`` triple as the reference backend,
  compiles the run through the lumpability check, evaluates the lumped
  kernel, and expands per-class results back to per-process form.  The
  per-class final counts equal the reference per-process counts (the
  lumping is exact, see :mod:`repro.meanfield.kernel`), and the float
  arithmetic below is copied operation-for-operation from the
  reference closed forms, so the returned
  :class:`~repro.core.probability.EventProbabilities` is **bit-for-bit
  identical** to the reference backend's.  This is what
  ``Engine(backend="meanfield")`` calls, and it is registered in
  ``CACHEABLE_QUALNAMES`` (RC005-checked purity).

* :func:`evaluate_spec` — the **parametric** path.  Takes a
  :class:`~repro.meanfield.counter.CounterRunSpec` (occupancies, no
  identities) and returns a :class:`CounterEvaluation` with aggregate
  and per-class probabilities plus the run's level measures.  Cost is
  ``O(rounds * classes**2)`` regardless of ``m``, which is what makes
  ``m = 10**6`` a sub-millisecond evaluation in E17 and
  ``repro scale-sweep``.

:func:`scaled_spec` builds the paper's deterministic run families
(good / silent / ``cut:r`` / ``isolate:r``) directly as specs, and
:func:`unsafety_family` sweeps the parametric worst-run family —
the scaled analogue of :func:`repro.adversary.search.family_search`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.probability import EventProbabilities
from ..core.protocol import Protocol
from ..core.run import Run
from ..core.topology import Topology
from ..core.types import Round
from ..protocols.protocol_m import ProtocolM
from ..protocols.protocol_s import ProtocolS
from ..protocols.weak_adversary import ProtocolW
from .counter import (
    ClassSpec,
    CounterAbstractionError,
    CounterRunSpec,
    is_complete,
    spec_from_run,
)
from .kernel import awareness_kernel, counting_kernel, known_sizes


@dataclass(frozen=True)
class CounterEvaluation:
    """Aggregate result of a parametric (scaled) counter evaluation.

    Per-process quantities collapse to per-class ones — a ``pr_attack``
    tuple with 10**6 entries would defeat the point — but the
    aggregate events are the paper's exact ``Pr[TA|R]`` / ``Pr[NA|R]``
    / ``Pr[PA|R]``.  ``level`` is ``L(R)`` (valid-gated counts,
    Lemma 6.4's analogue) and ``modified_level`` is ``ML(R)`` when the
    spec has a distinguished (coordinator) class, else ``None``.
    """

    num_processes: int
    num_rounds: Round
    pr_total_attack: float
    pr_no_attack: float
    pr_partial_attack: float
    class_sizes: Tuple[int, ...]
    pr_attack_by_class: Tuple[float, ...]
    level: int
    modified_level: Optional[int]
    method: str = "counter-exact"

    @property
    def unsafety(self) -> float:
        """``Pr[PA | R]`` — the per-run unsafety contribution."""
        return self.pr_partial_attack

    @property
    def liveness(self) -> float:
        """``Pr[TA | R]`` — the liveness of this run."""
        return self.pr_total_attack


def supports(protocol: Protocol, topology: Topology) -> bool:
    """Whether the counter backend can evaluate this pair exactly.

    Requires a complete graph, a protocol family with a lumped kernel
    (S, W, M — exact types, not subclasses: a subclass may override
    the dynamics), and a declared symmetry.  Run-level lumpability is
    checked per run by :func:`evaluate_counter`.
    """
    if not is_complete(topology):
        return False
    if type(protocol) not in (ProtocolS, ProtocolW, ProtocolM):
        return False
    return protocol.automorphism_invariant_vertices(topology) is not None


def evaluate_counter(
    protocol: Protocol, topology: Topology, run: Run
) -> EventProbabilities:
    """Exact concrete evaluation through the counter abstraction.

    Raises :class:`CounterAbstractionError` when the pair is not
    counter-sufficient and :class:`LumpabilityError` when the run is
    not class-uniform — the explicit contract of
    ``backend="meanfield"``.
    """
    if not is_complete(topology):
        raise CounterAbstractionError(
            "counter abstraction requires a complete graph; "
            f"{topology.describe()} is not K_{topology.num_processes} "
            "(use the reference or vectorized backend)"
        )
    distinguished = protocol.automorphism_invariant_vertices(topology)
    if distinguished is None:
        raise CounterAbstractionError(
            f"protocol {protocol.name!r} declares no symmetry "
            "(automorphism_invariant_vertices returned None), so the "
            "state-class partition is undefined"
        )
    partition, spec = spec_from_run(topology, run, distinguished)
    class_of = partition.index_map()
    if type(protocol) is ProtocolS:
        rfire_class = class_of[protocol.coordinator]
        states = counting_kernel(
            spec, rfire_gated=True, rfire_class=rfire_class
        )
        class_thresholds = [
            state.count if state.has_rfire else 0 for state in states
        ]
        # Identical float arithmetic to ProtocolS.closed_form_probabilities.
        t = protocol.threshold
        ordered = [
            class_thresholds[class_of[i]] for i in topology.processes
        ]
        low = min(ordered)
        high = max(ordered)
        pr_ta = min(1.0, low / t)
        pr_na = max(0.0, 1.0 - high / t)
        pr_pa = max(0.0, 1.0 - pr_ta - pr_na)
        pr_attack = tuple(min(1.0, a / t) for a in ordered)
        return EventProbabilities(
            pr_total_attack=pr_ta,
            pr_no_attack=pr_na,
            pr_partial_attack=pr_pa,
            pr_attack=pr_attack,
            method="closed-form",
        )
    if type(protocol) is ProtocolW:
        states = counting_kernel(spec, rfire_gated=False, rfire_class=None)
        outputs = [
            states[class_of[i]].count >= protocol.threshold
            for i in topology.processes
        ]
        return _deterministic_probabilities(outputs)
    if type(protocol) is ProtocolM:
        aware = awareness_kernel(spec)
        sizes = known_sizes(spec, aware)
        quorum = protocol.threshold(topology.num_processes)
        outputs = [
            sizes[class_of[i]] >= quorum for i in topology.processes
        ]
        return _deterministic_probabilities(outputs)
    raise CounterAbstractionError(
        f"no lumped kernel for protocol {protocol.name!r}; the counter "
        "backend supports Protocols S, W and M"
    )


def _deterministic_probabilities(outputs: List[bool]) -> EventProbabilities:
    """The 0/1 event probabilities of a deterministic protocol —
    operation-for-operation the W/M reference closed form."""
    all_attack = all(outputs)
    none_attack = not any(outputs)
    return EventProbabilities(
        pr_total_attack=1.0 if all_attack else 0.0,
        pr_no_attack=1.0 if none_attack else 0.0,
        pr_partial_attack=1.0 if not (all_attack or none_attack) else 0.0,
        pr_attack=tuple(1.0 if decided else 0.0 for decided in outputs),
        method="closed-form",
    )


def evaluate_spec(
    protocol: Protocol, spec: CounterRunSpec
) -> CounterEvaluation:
    """Parametric evaluation: probabilities and levels from a spec.

    The level measures ride along for free: the valid-gated kernel's
    counts are ``L_i(R)`` and the rfire-gated kernel's counts are
    ``ML_i(R)`` (Lemma 6.4 and its analogue), so ``min`` over classes
    gives ``L(R)`` / ``ML(R)`` without any per-process work.
    """
    level_states = counting_kernel(spec, rfire_gated=False, rfire_class=None)
    level = min(state.count for state in level_states)
    rfire_class = spec.distinguished_class()
    modified_level: Optional[int] = None
    if rfire_class is not None:
        ml_states = counting_kernel(
            spec, rfire_gated=True, rfire_class=rfire_class
        )
        modified_level = min(state.count for state in ml_states)
    class_sizes = tuple(cls.size for cls in spec.classes)
    if type(protocol) is ProtocolS:
        if rfire_class is None:
            raise CounterAbstractionError(
                "Protocol S needs a distinguished (coordinator) class in "
                "the spec; build it with scaled_spec(distinguished=True)"
            )
        states = counting_kernel(
            spec, rfire_gated=True, rfire_class=rfire_class
        )
        thresholds = [
            state.count if state.has_rfire else 0 for state in states
        ]
        t = protocol.threshold
        low = min(thresholds)
        high = max(thresholds)
        pr_ta = min(1.0, low / t)
        pr_na = max(0.0, 1.0 - high / t)
        pr_pa = max(0.0, 1.0 - pr_ta - pr_na)
        by_class = tuple(min(1.0, a / t) for a in thresholds)
    elif type(protocol) is ProtocolW:
        decided = [
            state.count >= protocol.threshold for state in level_states
        ]
        pr_ta = 1.0 if all(decided) else 0.0
        pr_na = 1.0 if not any(decided) else 0.0
        pr_pa = 1.0 if not (all(decided) or not any(decided)) else 0.0
        by_class = tuple(1.0 if flag else 0.0 for flag in decided)
    elif type(protocol) is ProtocolM:
        aware = awareness_kernel(spec)
        sizes = known_sizes(spec, aware)
        quorum = protocol.threshold(spec.num_processes)
        decided = [size >= quorum for size in sizes]
        pr_ta = 1.0 if all(decided) else 0.0
        pr_na = 1.0 if not any(decided) else 0.0
        pr_pa = 1.0 if not (all(decided) or not any(decided)) else 0.0
        by_class = tuple(1.0 if flag else 0.0 for flag in decided)
    else:
        raise CounterAbstractionError(
            f"no lumped kernel for protocol {protocol.name!r}; the "
            "counter backend supports Protocols S, W and M"
        )
    return CounterEvaluation(
        num_processes=spec.num_processes,
        num_rounds=spec.num_rounds,
        pr_total_attack=pr_ta,
        pr_no_attack=pr_na,
        pr_partial_attack=pr_pa,
        class_sizes=class_sizes,
        pr_attack_by_class=by_class,
        level=level,
        modified_level=modified_level,
    )


# ---------------------------------------------------------------------------
# Parametric run-spec builders
# ---------------------------------------------------------------------------

#: Run patterns :func:`scaled_spec` understands, mirroring the CLI run
#: mini-language where the family is class-uniform by construction.
SCALED_PATTERNS = ("good", "silent", "cut", "isolate")


def _full_mask(num_classes: int) -> int:
    return (1 << (num_classes * num_classes)) - 1


def _isolation_mask(num_classes: int, isolated: int) -> int:
    """Full delivery except any block touching ``isolated``."""
    mask = 0
    for a in range(num_classes):
        for b in range(num_classes):
            if a == isolated or b == isolated:
                continue
            mask |= 1 << (a * num_classes + b)
    return mask


def scaled_spec(
    num_processes: int,
    num_rounds: Round,
    pattern: str,
    distinguished: bool = False,
    distinguished_has_input: bool = True,
    input_count: Optional[int] = None,
) -> CounterRunSpec:
    """Build a class-uniform run spec for an ``m``-process complete graph.

    ``pattern`` is one of ``good`` (every message delivered),
    ``silent`` (none), ``cut:r`` (everything in rounds ``< r``, nothing
    after — :func:`repro.core.run.round_cut_run` semantics), or
    ``isolate:r`` (good, except the distinguished class exchanges no
    messages from round ``r`` on — the coordinator-isolation family
    that spreads the modified level).  ``input_count`` restricts the
    input signal to that many non-distinguished processes (default:
    all of them).
    """
    if num_processes < 2:
        raise ValueError(
            f"need at least 2 processes, got {num_processes}"
        )
    name, _, argument = pattern.partition(":")
    if name not in SCALED_PATTERNS:
        raise ValueError(
            f"unknown scaled run pattern {pattern!r}; expected one of "
            f"{', '.join(SCALED_PATTERNS)}"
        )
    if name in ("cut", "isolate"):
        if not argument:
            raise ValueError(f"pattern {name!r} needs a round: {name}:R")
        boundary = int(argument)
        if not 1 <= boundary <= num_rounds + 1:
            raise ValueError(
                f"{name} round must be in 1..{num_rounds + 1}, "
                f"got {boundary}"
            )
    else:
        boundary = 0
    if name == "isolate" and not distinguished:
        raise ValueError(
            "the isolate pattern needs a distinguished class to isolate"
        )
    classes: List[ClassSpec] = []
    if distinguished:
        classes.append(
            ClassSpec(
                size=1, has_input=distinguished_has_input, distinguished=True
            )
        )
    rest = num_processes - (1 if distinguished else 0)
    if input_count is None:
        input_count = rest
    if not 0 <= input_count <= rest:
        raise ValueError(
            f"input_count must be in 0..{rest}, got {input_count}"
        )
    if input_count > 0:
        classes.append(ClassSpec(size=input_count, has_input=True))
    if rest - input_count > 0:
        classes.append(ClassSpec(size=rest - input_count, has_input=False))
    k = len(classes)
    full = _full_mask(k)
    masks: List[int] = []
    for round_number in range(1, num_rounds + 1):
        if name == "good":
            masks.append(full)
        elif name == "silent":
            masks.append(0)
        elif name == "cut":
            masks.append(full if round_number < boundary else 0)
        else:  # isolate
            masks.append(
                full
                if round_number < boundary
                else _isolation_mask(k, isolated=0)
            )
    return CounterRunSpec(
        num_rounds=num_rounds, classes=tuple(classes), deliveries=tuple(masks)
    )


def unsafety_family(
    protocol: Protocol,
    num_processes: int,
    num_rounds: Round,
    engine: Optional[object] = None,
) -> Tuple[float, CounterRunSpec]:
    """Max ``Pr[PA|R]`` over the parametric worst-run family.

    The scaled analogue of the family search: sweeps the cut and
    isolation families crossed with input-restriction variants — the
    shapes that realize the worst case for the counting protocols
    (straddling levels) — and returns the best value with its witness
    spec.  Certification is ``family``: a lower bound on ``U_s`` that
    is tight for Protocol S (the straddling cut reaches ``ε``-scale
    partial attack) and exactly 1 for Protocol M (a cut straddles the
    quorum).  For Protocol W the bound is vacuously 0: its count
    advances only on hearing from *every* process, so any class-uniform
    run keeps counts globally uniform and can never straddle the
    threshold — W's ``U_s = 1`` witnesses are inherently asymmetric
    (miss-one-message runs) and live in the small-``m`` exhaustive
    search, not in this family.  Pass an
    :class:`~repro.engine.engine.Engine` to memoize the per-spec
    evaluations (and count them in the engine's stats); the sweep is
    pure either way.
    """
    evaluator: Callable[[Protocol, CounterRunSpec], CounterEvaluation]
    if engine is None:
        evaluator = evaluate_spec
    else:
        evaluator = engine.evaluate_scaled  # type: ignore[attr-defined]
    needs_coordinator = type(protocol) is ProtocolS
    rest = num_processes - (1 if needs_coordinator else 0)
    input_variants = sorted({rest, rest // 2, 1, 0})
    patterns: List[str] = ["good", "silent"]
    for boundary in range(1, num_rounds + 2):
        patterns.append(f"cut:{boundary}")
        if needs_coordinator:
            patterns.append(f"isolate:{boundary}")
    best_value = 0.0
    best_spec: Optional[CounterRunSpec] = None
    for pattern in patterns:
        for input_count in input_variants:
            if input_count < 0 or input_count > rest:
                continue
            for coordinator_input in (
                (True, False) if needs_coordinator else (True,)
            ):
                if (
                    not needs_coordinator
                    and input_count == 0
                ):
                    # No input anywhere: validity makes PA impossible.
                    continue
                try:
                    spec = scaled_spec(
                        num_processes,
                        num_rounds,
                        pattern,
                        distinguished=needs_coordinator,
                        distinguished_has_input=coordinator_input,
                        input_count=input_count,
                    )
                except ValueError:
                    continue
                result = evaluator(protocol, spec)
                if best_spec is None or result.unsafety > best_value:
                    best_value = result.unsafety
                    best_spec = spec
    assert best_spec is not None
    return best_value, best_spec
