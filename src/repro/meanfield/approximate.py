"""Distributional kernels for the weak adversary at large ``m``.

The lumped kernels of :mod:`repro.meanfield.kernel` are exact for
*deterministic* class-uniform runs.  Against the **weak adversary** —
i.i.d. message loss with probability ``p`` — the run is random, and on
``K_m`` the Protocol M awareness dynamics collapse to a 1-dimensional
Markov chain on the aware-count ``A_r``: given ``A_r = a``, every
unaware process hears at least one aware process with probability
``q_a = 1 - p**a`` independently, so

    ``A_{r+1} = a + Binomial(m - a, 1 - p**a)``.

Two evaluators are provided:

* :func:`exact_awareness_distribution` — the exact distribution of
  ``A_r`` by convolving the binomial message-loss kernel round by
  round (``O(N · m**2)``; guarded to moderate ``m``).  ``|known_i|``
  is bounded by the aware count, so ``Pr[A_N >= quorum]`` is an exact
  upper bound on Protocol M's weak-adversary liveness.

* :func:`meanfield_envelope` — the mean-field fixed-point recursion
  ``x_{r+1} = f(x_r)``, ``f(x) = x + (1 - x)(1 - p**(m x))`` on
  fractions, with a **computed** concentration envelope: with
  probability at least ``1 - delta``, ``A_r / m`` lies within
  ``x_r ± e_r`` for every round simultaneously, where

    ``e_{r+1} = L_r · e_r + sqrt(ln(2N/δ) / (2m))``

  combines one Hoeffding step for the binomial increment with the
  local Lipschitz constant ``L_r = sup |f'|`` over the current
  envelope interval (``f'(x) = p**(mx) (1 + (1-x) m ln(1/p))``, a
  decreasing function, so the sup sits at the interval's left edge).
  DESIGN.md section 15 derives the bound; the envelope is rigorous but
  only *useful* for macroscopic seeds (``A_0 = Θ(m)``) — epidemics
  from O(1) seeds genuinely do not concentrate in early rounds, and
  the bound honestly blows up to the trivial ``e_r = 1`` there.

E17 checks the two against each other: at moderate ``m`` the exact
chain's mass inside the envelope must be at least ``1 - delta``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .counter import CounterAbstractionError

#: Exact convolution is O(N · m²); refuse sizes where that stops being
#: interactive.  Larger m is exactly what the mean-field envelope is for.
MAX_EXACT_CONVOLUTION = 4096


@dataclass(frozen=True)
class MeanFieldEnvelope:
    """The mean-field curve with its certified concentration band.

    ``aware_fraction[r]`` is ``x_r`` and ``half_width[r]`` is ``e_r``:
    with probability at least ``confidence`` (jointly over all rounds)
    the true aware fraction ``A_r / m`` lies in
    ``[x_r - e_r, x_r + e_r]``.
    """

    num_processes: int
    num_rounds: int
    loss_probability: float
    initial_aware: int
    confidence: float
    aware_fraction: Tuple[float, ...]
    half_width: Tuple[float, ...]

    def band(self, round_number: int) -> Tuple[float, float]:
        """The certified ``[lo, hi]`` band for ``A_r / m``."""
        x = self.aware_fraction[round_number]
        e = self.half_width[round_number]
        return (max(0.0, x - e), min(1.0, x + e))

    def quorum_round(self, quorum_fraction: float) -> Optional[int]:
        """First round whose certified band sits above the quorum.

        Returns the earliest ``r`` with ``x_r - e_r >= quorum_fraction``
        — by then at least a quorum of processes is aware with
        probability ``>= confidence`` — or ``None`` within horizon.
        """
        for round_number in range(self.num_rounds + 1):
            lo, _ = self.band(round_number)
            if lo >= quorum_fraction:
                return round_number
        return None


def _step(x: float, m: int, p: float) -> float:
    """One mean-field round: ``f(x) = x + (1 - x)(1 - p**(m x))``."""
    return x + (1.0 - x) * (1.0 - p ** (m * x))


def _lipschitz(lo: float, m: int, p: float) -> float:
    """``sup |f'|`` over ``[lo, 1]`` — attained at the left edge."""
    log_gain = m * math.log(1.0 / p)
    return p ** (m * lo) * (1.0 + (1.0 - lo) * log_gain)


def meanfield_envelope(
    num_processes: int,
    num_rounds: int,
    loss_probability: float,
    initial_aware: int,
    delta: float = 1e-3,
) -> MeanFieldEnvelope:
    """The mean-field awareness curve with its Hoeffding envelope."""
    if not 0.0 < loss_probability < 1.0:
        raise ValueError(
            f"loss probability must be in (0, 1), got {loss_probability}"
        )
    if not 0 <= initial_aware <= num_processes:
        raise ValueError(
            f"initial_aware must be in 0..{num_processes}, "
            f"got {initial_aware}"
        )
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    m = num_processes
    p = loss_probability
    hoeffding = math.sqrt(math.log(2.0 * num_rounds / delta) / (2.0 * m))
    fractions = [initial_aware / m]
    widths = [0.0]
    for _ in range(num_rounds):
        x = fractions[-1]
        e = widths[-1]
        lo = max(0.0, x - e)
        lipschitz = _lipschitz(lo, m, p)
        fractions.append(min(1.0, _step(x, m, p)))
        widths.append(min(1.0, lipschitz * e + hoeffding))
    return MeanFieldEnvelope(
        num_processes=m,
        num_rounds=num_rounds,
        loss_probability=p,
        initial_aware=initial_aware,
        confidence=1.0 - delta,
        aware_fraction=tuple(fractions),
        half_width=tuple(widths),
    )


def fixed_point_fraction(
    num_processes: int,
    loss_probability: float,
    initial_fraction: float,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> float:
    """The limit of the mean-field recursion from ``initial_fraction``.

    For any positive seed the epidemic recursion climbs to the
    absorbing fixed point ``x* = 1``; from a zero seed it stays at 0
    (validity).  Iterated rather than solved in closed form so the
    same code serves future kernels with interior fixed points.
    """
    if not 0.0 < loss_probability < 1.0:
        raise ValueError(
            f"loss probability must be in (0, 1), got {loss_probability}"
        )
    x = min(1.0, max(0.0, initial_fraction))
    for _ in range(max_iterations):
        advanced = min(1.0, _step(x, num_processes, loss_probability))
        if abs(advanced - x) <= tolerance:
            return advanced
        x = advanced
    return x


def exact_awareness_distribution(
    num_processes: int,
    num_rounds: int,
    loss_probability: float,
    initial_aware: int,
) -> np.ndarray:
    """Exact per-round distributions of the aware count on ``K_m``.

    Returns an array of shape ``(num_rounds + 1, m + 1)``: row ``r``
    is the exact distribution of ``A_r`` under the binomial
    message-loss kernel.  Deterministic, no sampling — this is the
    "exact counter-dynamics transition convolution" of the complete
    graph, feasible up to :data:`MAX_EXACT_CONVOLUTION` processes.
    """
    if not 0.0 < loss_probability < 1.0:
        raise ValueError(
            f"loss probability must be in (0, 1), got {loss_probability}"
        )
    if not 0 <= initial_aware <= num_processes:
        raise ValueError(
            f"initial_aware must be in 0..{num_processes}, "
            f"got {initial_aware}"
        )
    m = num_processes
    if m > MAX_EXACT_CONVOLUTION:
        raise CounterAbstractionError(
            f"exact convolution is O(N·m²) and capped at "
            f"m = {MAX_EXACT_CONVOLUTION} (got {m}); use "
            "meanfield_envelope for larger instances"
        )
    p = loss_probability
    log_factorial = np.zeros(m + 1)
    if m >= 1:
        log_factorial[1:] = np.cumsum(np.log(np.arange(1, m + 1)))
    rows = np.zeros((num_rounds + 1, m + 1))
    rows[0, initial_aware] = 1.0
    for round_number in range(1, num_rounds + 1):
        previous = rows[round_number - 1]
        current = rows[round_number]
        for aware in range(m + 1):
            mass = float(previous[aware])
            if mass <= 0.0:
                continue
            unaware = m - aware
            if unaware == 0:
                current[m] += mass
                continue
            hear = 1.0 - p ** aware
            if hear <= 0.0:
                current[aware] += mass
                continue
            if hear >= 1.0:
                current[m] += mass
                continue
            newly = np.arange(unaware + 1)
            log_pmf = (
                log_factorial[unaware]
                - log_factorial[newly]
                - log_factorial[unaware - newly]
                + newly * math.log(hear)
                + (unaware - newly) * math.log(1.0 - hear)
            )
            current[aware : m + 1] += mass * np.exp(log_pmf)
    return rows


def envelope_coverage(
    envelope: MeanFieldEnvelope, distributions: np.ndarray
) -> Tuple[float, ...]:
    """Exact per-round probability mass inside the certified band.

    ``distributions`` is the output of
    :func:`exact_awareness_distribution` for the same parameters.  The
    envelope guarantee says every entry is at least
    ``envelope.confidence`` — E17 asserts exactly that.
    """
    m = envelope.num_processes
    coverage = []
    for round_number in range(envelope.num_rounds + 1):
        lo, hi = envelope.band(round_number)
        counts = np.arange(m + 1) / m
        inside = (counts >= lo) & (counts <= hi)
        coverage.append(float(distributions[round_number][inside].sum()))
    return tuple(coverage)
