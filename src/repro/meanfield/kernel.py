"""Lumped (one-representative-per-class) protocol kernels.

Each kernel evolves one state per process class instead of one per
process.  Correctness rests on the lumpability invariant established
in :mod:`repro.meanfield.counter`: on a class-uniform run all members
of a class hold identical local states every round, so the class state
*is* the member state, with one representational twist — ``seen`` /
``known`` sets are identity sets in the reference machines, so the
lumped kernels store them as **sets of fully-contained classes** plus
an implicit ``{self}``.

The implicit-self convention is sound because of the machines' own
invariants (Invariant 7 of the paper: ``count >= 1`` implies
``i in seen``; Protocol M: ``aware`` iff ``i in known``), and the
update rules only ever produce sets of that shape:

* a sender class ``B != A`` contributes all of ``B`` (every member
  names itself) plus ``B``'s fully-seen classes;
* the receiver's own class ``A`` as sender contributes ``A \\ {i}``,
  which together with the always-unioned ``{i}`` is all of ``A``;
* singleton classes are normalized eagerly (``{i} = A``), so the
  stored class set plus implicit self is canonical.

The counting kernel below is a line-for-line lumping of Figure 1
(:class:`repro.protocols.counting.CountingLocal`) — same temporaries
(``highcount`` / ``highset`` / ``highseen``), same branch structure —
so on class-uniform runs it reproduces the reference final counts
*exactly*, not approximately, and the closed-form probabilities built
from them are bit-for-bit identical.  The differential test suite
(tests/meanfield) enforces this against the reference simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from .counter import CounterRunSpec


@dataclass(frozen=True)
class LumpedCountingState:
    """The class-level image of :class:`CountingState`.

    ``seen_full`` holds the indices of classes fully contained in the
    member's ``seen`` set; the member itself is implicit whenever
    ``count >= 1`` (Invariant 7).  ``has_rfire`` abstracts ``rfire``
    to definedness — the counting dynamics only test ``rfire is None``,
    never its value.
    """

    count: int
    has_rfire: bool
    valid: bool
    seen_full: FrozenSet[int]


@dataclass(frozen=True)
class LumpedAwarenessState:
    """The class-level image of Protocol M's :class:`MState`.

    ``known_full`` holds the classes fully contained in ``known``;
    the member itself is implicit whenever ``aware`` is set.
    """

    aware: bool
    known_full: FrozenSet[int]


def _received_classes(
    spec: CounterRunSpec, round_number: int, target: int
) -> List[int]:
    """Sender classes whose block to ``target`` is delivered this round.

    The within-class block ``(A, A)`` only carries messages when the
    class has at least two members (processes never send to
    themselves), so it is vacuous for singletons.
    """
    received: List[int] = []
    for source in range(spec.num_classes):
        if not spec.delivered(round_number, source, target):
            continue
        if source == target and spec.classes[source].size < 2:
            continue
        received.append(source)
    return received


def counting_kernel(
    spec: CounterRunSpec,
    rfire_gated: bool,
    rfire_class: Optional[int] = None,
) -> Tuple[LumpedCountingState, ...]:
    """Run the lumped Figure 1 machine; return final per-class states.

    ``rfire_gated`` selects Protocol S's start rule (valid *and* rfire
    heard) versus Protocol W's (valid suffices); ``rfire_class`` is the
    class holding the coordinator's random draw (Protocol S) or
    ``None`` when no process ever defines ``rfire`` (Protocol W).
    """
    k = spec.num_classes
    all_classes = frozenset(range(k))
    states: List[LumpedCountingState] = []
    for index, cls in enumerate(spec.classes):
        has_rfire = rfire_class is not None and index == rfire_class
        if rfire_gated:
            counting = cls.has_input and has_rfire
        else:
            counting = cls.has_input
        count = 1 if counting else 0
        seen = (
            frozenset([index]) if counting and cls.size == 1 else frozenset()
        )
        states.append(
            LumpedCountingState(
                count=count,
                has_rfire=has_rfire,
                valid=cls.has_input,
                seen_full=seen,
            )
        )
    for round_number in range(1, spec.num_rounds + 1):
        next_states: List[LumpedCountingState] = []
        for index, cls in enumerate(spec.classes):
            received = _received_classes(spec, round_number, index)
            state = states[index]
            # Line 1: adopt the first defined rfire heard.
            has_rfire = state.has_rfire or any(
                states[b].has_rfire for b in received
            )
            # Line 2: adopt validity.
            valid = state.valid or any(states[b].valid for b in received)
            count = state.count
            seen = state.seen_full
            # Line 3: start counting (probe uses the adopted values).
            starts = (
                valid
                and count == 0
                and (has_rfire if rfire_gated else True)
            )
            if starts:
                count = 1
                seen = frozenset([index]) if cls.size == 1 else frozenset()
            # Counting block — the highcount/highset/highseen update.
            if count >= 1 and received:
                highcount = max(states[b].count for b in received)
                highset = [
                    b for b in received if states[b].count == highcount
                ]
                highseen: FrozenSet[int] = frozenset().union(
                    *({b} | states[b].seen_full for b in highset)
                )
                if highcount == count:
                    seen = seen | highseen
                elif highcount > count:
                    seen = highseen
                    count = highcount
                if cls.size == 1:
                    # Normalize: the implicit {i} makes a singleton full.
                    seen = seen | {index}
                if seen == all_classes:
                    count = count + 1
                    seen = (
                        frozenset([index]) if cls.size == 1 else frozenset()
                    )
            next_states.append(
                LumpedCountingState(
                    count=count,
                    has_rfire=has_rfire,
                    valid=valid,
                    seen_full=seen,
                )
            )
        states = next_states
    return tuple(states)


def awareness_kernel(spec: CounterRunSpec) -> Tuple[LumpedAwarenessState, ...]:
    """Run the lumped Protocol M awareness machine.

    The reference transition is ``known' = known ∪ (∪ payloads)``,
    ``aware' = (known' != ∅)``, then ``known' ∪= {i}`` if aware.  A
    sender's payload is non-empty iff the sender is aware (awareness
    and a non-empty known set coincide by construction), and an aware
    sender class contributes all of itself plus its fully-known
    classes, so the lumped update mirrors the reference exactly.
    """
    states: List[LumpedAwarenessState] = []
    for index, cls in enumerate(spec.classes):
        known = (
            frozenset([index])
            if cls.has_input and cls.size == 1
            else frozenset()
        )
        states.append(
            LumpedAwarenessState(aware=cls.has_input, known_full=known)
        )
    for round_number in range(1, spec.num_rounds + 1):
        next_states: List[LumpedAwarenessState] = []
        for index, cls in enumerate(spec.classes):
            received = _received_classes(spec, round_number, index)
            state = states[index]
            union = state.known_full
            aware = state.aware
            for b in received:
                if states[b].aware:
                    aware = True
                    union = union | states[b].known_full | {b}
            if aware and cls.size == 1:
                union = union | {index}
            next_states.append(
                LumpedAwarenessState(aware=aware, known_full=union)
            )
        states = next_states
    return tuple(states)


def known_sizes(
    spec: CounterRunSpec, states: Tuple[LumpedAwarenessState, ...]
) -> Tuple[int, ...]:
    """``|known_i|`` per class, expanding the implicit self."""
    sizes: List[int] = []
    for index, state in enumerate(states):
        total = sum(
            spec.classes[c].size for c in state.known_full
        )
        if state.aware and index not in state.known_full:
            total += 1
        sizes.append(total)
    return tuple(sizes)
