"""The counter abstraction: state classes, occupancies, lumpability.

**State classes.**  Fix a protocol and a run on the complete graph
``K_m``.  Partition the processes by the only two attributes the
protocol's local machines can distinguish at round 0: whether the
process is one of the protocol's *distinguished* vertices (the
coordinator of Protocol S — exactly the set
:meth:`~repro.core.protocol.Protocol.automorphism_invariant_vertices`
declares), and whether it received the input signal.  Distinguished
vertices form singleton classes; the rest split into an input class
and a no-input class.

**Lumpability.**  The partition is *lumpable* for a run iff, in every
round and for every ordered class pair ``(A, B)``, the adversary
either delivers **all** messages from ``A`` to ``B`` or **none** of
them.  Under that condition a straightforward induction shows that all
processes in a class hold identical local states in every round (they
start identical and receive identical payload multisets), so the
dynamics factor through class occupancies and one representative per
class suffices.  :func:`spec_from_run` performs the check and compiles
the run into a :class:`CounterRunSpec`; a run that is not class-uniform
raises :class:`LumpabilityError` naming the first offending round and
class pair.  The paper's deterministic run families (good, silent,
round cuts, coordinator isolation) are all class-uniform; Bernoulli
loss runs generally are not — they belong to the reference /
vectorized backends or to the distributional kernels of
:mod:`repro.meanfield.approximate`.

**Occupancy vectors.**  :class:`CounterState` is the per-round
occupancy histogram over *local-state classes* (count value, rfire
known, validity, seen-set size).  It is the abstraction the lumped
kernels evolve implicitly; :func:`counter_trajectory` materializes it
from a reference execution so property tests can check the round-trip
invariants (total mass ``m``, non-negativity, permutation invariance
on complete graphs) without trusting the kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.protocol import Protocol
from ..core.run import Run
from ..core.topology import Topology
from ..core.types import MessageTuple, ProcessId, Round


class CounterAbstractionError(ValueError):
    """The counter abstraction does not apply to this instance.

    Raised before any lumped evaluation when the protocol declares no
    symmetry, the topology is not complete, or no lumped kernel exists
    for the protocol family.  Callers that can fall back (the engine's
    ``auto`` backend, the CLI) should catch this and use the
    per-process backends instead; ``backend="meanfield"`` propagates
    it so the failure is explicit.
    """


class LumpabilityError(CounterAbstractionError):
    """A concrete run is not class-uniform for the induced partition.

    The message names the first round and ordered class pair whose
    delivery pattern is partial, which is exactly the certificate that
    per-class states would diverge from that round on.
    """


@dataclass(frozen=True)
class ClassSpec:
    """One process class of the partition, identity-free.

    ``size`` is the occupancy (how many processes the class holds),
    ``has_input`` whether its members received the input signal, and
    ``distinguished`` whether the class is a singleton pinned by the
    protocol's symmetry declaration (Protocol S's coordinator).
    """

    size: int
    has_input: bool
    distinguished: bool = False

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"class size must be >= 1, got {self.size}")
        if self.distinguished and self.size != 1:
            raise ValueError(
                "distinguished classes are singletons by construction, "
                f"got size {self.size}"
            )


@dataclass(frozen=True)
class CounterRunSpec:
    """A class-uniform run, parameterized by occupancies — not ids.

    ``deliveries[r - 1]`` is a bitmask over ordered class pairs for
    round ``r``: bit ``a * k + b`` is set iff every message from class
    ``a`` to class ``b`` is delivered that round (processes never send
    to themselves, so the ``(a, a)`` block means "within-class" traffic
    and is vacuous for singleton classes).  Together with the class
    table this determines the lumped dynamics for **any** total size —
    the same spec evaluates ``m = 8`` and ``m = 10**6`` in identical
    time, which is the whole point of the subsystem.

    The packed form (:meth:`packed`) is a flat tuple of ints — the
    "packed counter state" the engine keys its scaled memo cache on.
    """

    num_rounds: Round
    classes: Tuple[ClassSpec, ...]
    deliveries: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {self.num_rounds}")
        if not self.classes:
            raise ValueError("a CounterRunSpec needs at least one class")
        if len(self.deliveries) != self.num_rounds:
            raise ValueError(
                f"expected {self.num_rounds} delivery masks, "
                f"got {len(self.deliveries)}"
            )
        k = len(self.classes)
        full = (1 << (k * k)) - 1
        for round_index, mask in enumerate(self.deliveries):
            if not 0 <= mask <= full:
                raise ValueError(
                    f"delivery mask {mask:#x} for round {round_index + 1} "
                    f"does not fit {k} classes"
                )
        if sum(1 for cls in self.classes if cls.distinguished) > 1:
            raise ValueError("at most one distinguished class is supported")

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def num_processes(self) -> int:
        return sum(cls.size for cls in self.classes)

    def delivered(self, round_number: Round, source: int, target: int) -> bool:
        """Whether the ``source -> target`` block is delivered."""
        bit = source * len(self.classes) + target
        return bool((self.deliveries[round_number - 1] >> bit) & 1)

    def distinguished_class(self) -> Optional[int]:
        """Index of the distinguished singleton class, if any."""
        for index, cls in enumerate(self.classes):
            if cls.distinguished:
                return index
        return None

    def packed(self) -> Tuple[int, ...]:
        """Flat int encoding for cache keys (and nothing else)."""
        flat: List[int] = [self.num_rounds, len(self.classes)]
        for cls in self.classes:
            flat.append(cls.size)
            flat.append(int(cls.has_input))
            flat.append(int(cls.distinguished))
        flat.extend(self.deliveries)
        return tuple(flat)


@dataclass(frozen=True)
class StateClassPartition:
    """The concrete partition behind a spec: blocks with identities.

    Only the concrete (small-``m``) path needs this — it maps each
    process id to its class index so per-process results (e.g. the
    ``pr_attack`` tuple) can be expanded back out of per-class values.
    """

    blocks: Tuple[FrozenSet[ProcessId], ...]

    def class_of(self, process: ProcessId) -> int:
        for index, block in enumerate(self.blocks):
            if process in block:
                return index
        raise KeyError(f"process {process} is in no class")

    def index_map(self) -> Dict[ProcessId, int]:
        mapping: Dict[ProcessId, int] = {}
        for index, block in enumerate(self.blocks):
            for process in block:
                mapping[process] = index
        return mapping


def partition_processes(
    processes: Sequence[ProcessId],
    distinguished: FrozenSet[ProcessId],
    inputs: FrozenSet[ProcessId],
) -> StateClassPartition:
    """Partition by (distinguished, got-input), distinguished first.

    Distinguished vertices become singleton classes in id order; the
    remaining processes split into an input class and a no-input class
    (omitted when empty).  The order is canonical so equal instances
    produce equal specs (and therefore shared cache lines).
    """
    blocks: List[FrozenSet[ProcessId]] = [
        frozenset([vertex]) for vertex in sorted(distinguished)
    ]
    rest = [p for p in processes if p not in distinguished]
    with_input = frozenset(p for p in rest if p in inputs)
    without_input = frozenset(rest) - with_input
    if with_input:
        blocks.append(with_input)
    if without_input:
        blocks.append(without_input)
    return StateClassPartition(tuple(blocks))


def is_complete(topology: Topology) -> bool:
    """Whether the graph is ``K_m`` (every unordered pair an edge)."""
    m = topology.num_processes
    return len(topology.edges) == m * (m - 1) // 2


def spec_from_run(
    topology: Topology,
    run: Run,
    distinguished: FrozenSet[ProcessId],
) -> Tuple[StateClassPartition, CounterRunSpec]:
    """Compile a concrete run into a class-uniform spec, or refuse.

    This is the lumpability check: the topology must be complete and
    every round's delivery pattern must be a union of class-pair
    blocks.  The first violation raises :class:`LumpabilityError` with
    the round and class pair, so callers (and users of
    ``--backend meanfield``) see exactly why the counter abstraction
    does not apply to their run.
    """
    if not is_complete(topology):
        raise CounterAbstractionError(
            "counter abstraction requires a complete graph; "
            f"{topology.describe()} is not K_{topology.num_processes}"
        )
    partition = partition_processes(
        list(topology.processes), distinguished, run.inputs
    )
    blocks = partition.blocks
    k = len(blocks)
    class_table = [
        ClassSpec(
            size=len(block),
            has_input=next(iter(block)) in run.inputs,
            distinguished=len(block) == 1 and next(iter(block)) in distinguished,
        )
        for block in blocks
    ]
    delivered = run.messages
    masks: List[int] = []
    for round_number in range(1, run.num_rounds + 1):
        mask = 0
        for a in range(k):
            for b in range(k):
                links = [
                    (i, j)
                    for i in blocks[a]
                    for j in blocks[b]
                    if i != j
                ]
                if not links:
                    continue
                hits = sum(
                    1
                    for (i, j) in links
                    if MessageTuple(i, j, round_number) in delivered
                )
                if hits == len(links):
                    mask |= 1 << (a * k + b)
                elif hits != 0:
                    raise LumpabilityError(
                        f"run is not class-uniform: round {round_number} "
                        f"delivers {hits}/{len(links)} messages from class "
                        f"{sorted(blocks[a])} to class {sorted(blocks[b])}; "
                        "the counter abstraction needs all-or-none "
                        "delivery per class pair (use the reference or "
                        "vectorized backend for this run)"
                    )
        masks.append(mask)
    spec = CounterRunSpec(
        num_rounds=run.num_rounds,
        classes=tuple(class_table),
        deliveries=tuple(masks),
    )
    return partition, spec


# ---------------------------------------------------------------------------
# Occupancy vectors (the CounterState abstraction)
# ---------------------------------------------------------------------------

#: A local-state class key: a flat, orderable tuple of ints.  The
#: classifiers below map protocol states onto these keys using only
#: permutation-invariant features (seen-*size*, never seen-*identity*),
#: which is what makes occupancies invariant under graph automorphisms.
StateKey = Tuple[int, ...]


@dataclass(frozen=True)
class CounterState:
    """The occupancy vector at one round: ``#processes per state class``.

    ``occupancy`` is sorted by key so equal histograms compare equal
    regardless of construction order.
    """

    round_number: Round
    occupancy: Tuple[Tuple[StateKey, int], ...]

    @property
    def total_mass(self) -> int:
        """Sum of occupancies — always ``m`` for a real execution."""
        return sum(count for _, count in self.occupancy)

    def counts(self) -> Dict[StateKey, int]:
        return dict(self.occupancy)

    @classmethod
    def from_keys(
        cls, round_number: Round, keys: Sequence[StateKey]
    ) -> "CounterState":
        histogram: Dict[StateKey, int] = {}
        for key in keys:
            histogram[key] = histogram.get(key, 0) + 1
        return cls(
            round_number=round_number,
            occupancy=tuple(sorted(histogram.items())),
        )


def default_state_key(state: object) -> StateKey:
    """Classify a protocol-local state into a permutation-invariant key.

    Supports the counting machine (Protocols S / W) and the Protocol M
    awareness machine; anything else raises
    :class:`CounterAbstractionError` because no occupancy semantics
    have been defined for it.
    """
    from ..protocols.counting import CountingState
    from ..protocols.protocol_m import MState

    if isinstance(state, CountingState):
        return (
            0,
            state.count,
            int(state.rfire is not None),
            int(state.valid),
            len(state.seen),
        )
    if isinstance(state, MState):
        return (1, int(state.aware), len(state.known), 0, 0)
    raise CounterAbstractionError(
        f"no occupancy classifier for local state type "
        f"{type(state).__name__}"
    )


def counter_trajectory(
    protocol: Protocol,
    topology: Topology,
    run: Run,
    tapes: Optional[Mapping[ProcessId, object]] = None,
    state_key: Callable[[object], StateKey] = default_state_key,
) -> Tuple[CounterState, ...]:
    """``Run -> CounterState`` projection via a reference execution.

    Executes the protocol with the reference simulator and collapses
    each round's per-process states into an occupancy vector — one
    :class:`CounterState` per round ``0..N``.  This is deliberately
    *independent* of the lumped kernels: the property tests use it to
    check the abstraction's invariants against ground truth.
    """
    from ..core.execution import execute

    execution = execute(protocol, topology, run, dict(tapes or {}))
    states_by_process = [
        execution.local(process).states for process in topology.processes
    ]
    horizon = run.num_rounds
    trajectory: List[CounterState] = []
    for round_number in range(horizon + 1):
        keys = [
            state_key(states[round_number]) for states in states_by_process
        ]
        trajectory.append(CounterState.from_keys(round_number, keys))
    return tuple(trajectory)
