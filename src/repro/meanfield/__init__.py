"""Counter-abstraction (mean-field) backend for the large-m regime.

The paper states its tradeoff bounds (``U_s >= L(R) / (m + 1)``,
Theorem 6.8) for arbitrary ``m``, but per-process simulation caps the
repo at small instances.  On complete graphs the Figure 1 counting
machine is *lumpable*: processes that agree on (a) whether they are a
distinguished vertex (the coordinator) and (b) whether they received
the input signal — and that send/receive along class-uniform delivery
patterns — hold identical local states in every round.  The whole
system is then a function of **class occupancies** (how many processes
sit in each local-state class), so one representative per class
simulates the entire network and the cost is ``O(rounds * classes**2)``
— independent of ``m``.  That is the parameterized-system idiom of
"Liveness of Randomised Parameterised Systems under Arbitrary
Schedulers" (PAPERS.md).

The subsystem has four layers:

* :mod:`repro.meanfield.counter` — the :class:`CounterState` occupancy
  abstraction, the state-class partition, the lumpability check that
  verifies a (protocol, topology, run) triple is counter-sufficient
  (raising :class:`CounterAbstractionError` / :class:`LumpabilityError`
  with a precise reason otherwise), and the parametric
  :class:`CounterRunSpec` that describes class-uniform runs at any
  ``m`` without materializing a graph;
* :mod:`repro.meanfield.kernel` — the lumped transcriptions of the
  Figure 1 counting machine (Protocols S and W) and of the Protocol M
  awareness machine, exact by construction on class-uniform runs;
* :mod:`repro.meanfield.evaluate` — the engine-facing entry points:
  :func:`evaluate_counter` (concrete runs, bit-for-bit equal to the
  reference closed forms) and :func:`evaluate_spec` (parametric runs,
  ``m`` up to 10**6 and beyond), plus the scaled run-spec builders and
  the parametric worst-run family sweep;
* :mod:`repro.meanfield.approximate` — the weak-adversary side: the
  exact binomial message-loss convolution over awareness counts on
  ``K_m`` and the mean-field fixed-point recursion with *computed*
  concentration envelopes (DESIGN.md section 15 derives the bound).

``Engine(backend="meanfield")`` routes exact evaluations through
:func:`evaluate_counter`; ``repro scale-sweep`` and experiment E17
drive the parametric path.
"""

from .approximate import (
    MAX_EXACT_CONVOLUTION,
    MeanFieldEnvelope,
    envelope_coverage,
    exact_awareness_distribution,
    fixed_point_fraction,
    meanfield_envelope,
)
from .counter import (
    ClassSpec,
    CounterAbstractionError,
    CounterRunSpec,
    CounterState,
    LumpabilityError,
    StateClassPartition,
    counter_trajectory,
    partition_processes,
    spec_from_run,
)
from .evaluate import (
    CounterEvaluation,
    evaluate_counter,
    evaluate_spec,
    scaled_spec,
    supports,
    unsafety_family,
)
from .kernel import (
    LumpedAwarenessState,
    LumpedCountingState,
    awareness_kernel,
    counting_kernel,
    known_sizes,
)

__all__ = [
    "ClassSpec",
    "CounterAbstractionError",
    "CounterEvaluation",
    "CounterRunSpec",
    "CounterState",
    "LumpabilityError",
    "LumpedAwarenessState",
    "LumpedCountingState",
    "MAX_EXACT_CONVOLUTION",
    "MeanFieldEnvelope",
    "StateClassPartition",
    "awareness_kernel",
    "counter_trajectory",
    "counting_kernel",
    "envelope_coverage",
    "evaluate_counter",
    "evaluate_spec",
    "exact_awareness_distribution",
    "fixed_point_fraction",
    "known_sizes",
    "meanfield_envelope",
    "partition_processes",
    "scaled_spec",
    "spec_from_run",
    "supports",
    "unsafety_family",
]
