"""The vectorized backend: numpy batch evaluation of counting protocols.

This module generalizes the two-general recurrence that used to live
in :mod:`repro.analysis.fast_mc` to *arbitrary* topologies and batches
of runs.  The Figure 1 counting machine (shared by Protocols S and W,
see :mod:`repro.protocols.counting`) has integer state — ``count``, a
``seen`` set, and the ``valid`` / ``rfire``-heard flags — all of which
vectorize across a batch of runs:

* ``seen`` sets become per-process bitmasks (one ``int64`` lane per
  run), so the Figure 1 ``highseen`` union is a bitwise OR;
* deliveries become a boolean tensor ``(batch, round, directed link)``;
* one python-level loop remains over rounds × processes × in-neighbors
  (all tiny), with every operation applying to the whole batch.

Because the counting state is integral, the batch kernel reproduces
the reference simulator *exactly* — not approximately — and the
closed-form probability formulas applied on top are transcribed
operation-for-operation from ``ProtocolS.closed_form_probabilities`` /
``ProtocolW.closed_form_probabilities`` so the floats are bit-identical
too.  The property tests in ``tests/engine/test_parity.py`` enforce
this on random connected topologies, runs, and tapes.

The specialized two-general kernels (``simulate_pair_counts`` and the
valid-gated variant) remain as fast paths for the huge weak-adversary
sample sweeps; :mod:`repro.analysis.fast_mc` now delegates to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.probability import EventProbabilities
from ..core.protocol import Protocol
from ..core.run import Run
from ..core.topology import Topology
from ..core.types import ProcessId, Round

# ``seen`` bitmasks live in int64 lanes; one bit per process.
MAX_VECTORIZED_PROCESSES = 62


# ----------------------------------------------------------------------
# Topology plans: per-process in-link gather indices, cached.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _TopologyPlan:
    """Link ordering and per-process gather indices for one topology."""

    num_processes: int
    links: Tuple[Tuple[ProcessId, ProcessId], ...]
    link_index: Dict[Tuple[ProcessId, ProcessId], int]
    # For each 0-indexed process: (link column indices, sender 0-indices).
    in_links: Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...]


@lru_cache(maxsize=128)
def _plan(topology: Topology) -> _TopologyPlan:
    links = tuple(topology.directed_links())
    link_index = {link: k for k, link in enumerate(links)}
    in_links = []
    for process in topology.processes:
        columns = []
        senders = []
        for k, (source, target) in enumerate(links):
            if target == process:
                columns.append(k)
                senders.append(source - 1)
        in_links.append((tuple(columns), tuple(senders)))
    return _TopologyPlan(
        num_processes=topology.num_processes,
        links=links,
        link_index=link_index,
        in_links=tuple(in_links),
    )


def runs_to_tensors(
    topology: Topology, num_rounds: Round, runs: Sequence[Run]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack runs into ``(delivered, inputs)`` boolean tensors.

    ``delivered`` has shape ``(batch, num_rounds, num_directed_links)``
    with the link order of :meth:`Topology.directed_links`; ``inputs``
    has shape ``(batch, num_processes)``.  Raises ``ValueError`` for a
    run that does not fit the topology or horizon (the same conditions
    the reference simulator rejects).
    """
    plan = _plan(topology)
    batch = len(runs)
    delivered = np.zeros((batch, num_rounds, len(plan.links)), dtype=bool)
    inputs = np.zeros((batch, plan.num_processes), dtype=bool)
    link_index = plan.link_index
    for b, run in enumerate(runs):
        if run.num_rounds != num_rounds:
            raise ValueError(
                f"run horizon {run.num_rounds} != batch horizon {num_rounds}"
            )
        for process in run.inputs:
            if process > plan.num_processes:
                raise ValueError(f"input process {process} is not a vertex")
            inputs[b, process - 1] = True
        for message in run.messages:
            try:
                k = link_index[(message.source, message.target)]
            except KeyError:
                raise ValueError(
                    f"message {message} does not follow an edge"
                ) from None
            delivered[b, message.round - 1, k] = True
    return delivered, inputs


# ----------------------------------------------------------------------
# The generalized counting kernel.
# ----------------------------------------------------------------------


def simulate_counting_batch(
    topology: Topology,
    delivered: np.ndarray,
    inputs: np.ndarray,
    rfire_gated: bool,
    coordinator: ProcessId = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the Figure 1 counting machine over a batch of runs.

    Returns ``(counts, rfire_known)`` of shape ``(batch, m)``: the
    final ``count_i`` values and whether each process ever heard the
    coordinator's ``rfire`` draw.  With ``rfire_gated`` the start rule
    is Protocol S's (valid *and* rfire known); otherwise counting is
    valid-gated (Protocol W, plain level tracking).

    The transition is a line-for-line vectorization of
    ``CountingLocal.transition``; ``seen`` sets are bitmasks.
    """
    plan = _plan(topology)
    m = plan.num_processes
    if m > MAX_VECTORIZED_PROCESSES:
        raise ValueError(
            f"vectorized kernel supports at most {MAX_VECTORIZED_PROCESSES} "
            f"processes, got {m}"
        )
    batch, num_rounds, num_links = delivered.shape
    if num_links != len(plan.links):
        raise ValueError("delivery tensor does not match the topology")
    own = np.array([np.int64(1) << i for i in range(m)], dtype=np.int64)
    full_mask = np.int64((1 << m) - 1)

    valid = inputs.copy()
    rknown = np.zeros((batch, m), dtype=bool)
    if rfire_gated:
        # Only the coordinator holds a defined rfire at the start (the
        # other processes' tapes are constant None).
        rknown[:, coordinator - 1] = True
        counting0 = valid & rknown
    else:
        counting0 = valid
    count = np.where(counting0, np.int64(1), np.int64(0))
    seen = np.where(counting0, own[None, :], np.int64(0))

    for round_number in range(num_rounds):
        d = delivered[:, round_number, :]
        prev_count = count
        prev_seen = seen
        prev_valid = valid
        prev_rknown = rknown
        count = prev_count.copy()
        seen = prev_seen.copy()
        valid = prev_valid.copy()
        rknown = prev_rknown.copy()
        for i in range(m):
            columns, senders = plan.in_links[i]
            if not columns:
                continue
            dcols = d[:, columns]
            any_msg = dcols.any(axis=1)
            # Figure 1 lines 1-2: adopt rfire and validity.
            rknown_i = prev_rknown[:, i] | (
                dcols & prev_rknown[:, senders]
            ).any(axis=1)
            valid_i = prev_valid[:, i] | (
                dcols & prev_valid[:, senders]
            ).any(axis=1)
            # Line 3: start counting.
            can_start = (prev_count[:, i] == 0) & valid_i
            if rfire_gated:
                can_start &= rknown_i
            ci = np.where(can_start, np.int64(1), prev_count[:, i])
            si = np.where(can_start, own[i], prev_seen[:, i])
            # Counting block: merge the highest delivered count.
            active = (ci >= 1) & any_msg
            sender_counts = np.where(
                dcols, prev_count[:, senders], np.int64(-1)
            )
            high = sender_counts.max(axis=1)
            is_high = dcols & (sender_counts == high[:, None])
            highseen = np.bitwise_or.reduce(
                np.where(is_high, prev_seen[:, senders], np.int64(0)), axis=1
            )
            equal = active & (high == ci)
            greater = active & (high > ci)
            si = np.where(equal, si | highseen | own[i], si)
            si = np.where(greater, highseen | own[i], si)
            ci = np.where(greater, high, ci)
            wrap = active & (si == full_mask)
            ci = np.where(wrap, ci + 1, ci)
            si = np.where(wrap, own[i], si)
            count[:, i] = ci
            seen[:, i] = si
            valid[:, i] = valid_i
            rknown[:, i] = rknown_i
    return count, rknown


# ----------------------------------------------------------------------
# Per-protocol closed-form fast paths.
# ----------------------------------------------------------------------


def _protocol_s_results(
    counts: np.ndarray, rknown: np.ndarray, epsilon: float
) -> List[EventProbabilities]:
    """Protocol S probabilities from batch counts — transcribed
    operation-for-operation from ``ProtocolS.closed_form_probabilities``
    so the floats match the reference bit-for-bit."""
    t = 1.0 / epsilon
    thresholds = np.where(rknown, counts, np.int64(0))
    results: List[EventProbabilities] = []
    for row in thresholds:
        ordered = [int(a) for a in row]
        low = min(ordered)
        high = max(ordered)
        pr_ta = min(1.0, low / t)
        pr_na = max(0.0, 1.0 - high / t)
        pr_pa = max(0.0, 1.0 - pr_ta - pr_na)
        results.append(
            EventProbabilities(
                pr_total_attack=pr_ta,
                pr_no_attack=pr_na,
                pr_partial_attack=pr_pa,
                pr_attack=tuple(min(1.0, a / t) for a in ordered),
                method="closed-form",
            )
        )
    return results


def _protocol_w_results(
    counts: np.ndarray, threshold: int
) -> List[EventProbabilities]:
    """Protocol W probabilities (deterministic 0/1) from batch counts."""
    attacks = counts >= threshold
    results: List[EventProbabilities] = []
    for row in attacks:
        outputs = [bool(decided) for decided in row]
        all_attack = all(outputs)
        none_attack = not any(outputs)
        results.append(
            EventProbabilities(
                pr_total_attack=1.0 if all_attack else 0.0,
                pr_no_attack=1.0 if none_attack else 0.0,
                pr_partial_attack=(
                    1.0 if not (all_attack or none_attack) else 0.0
                ),
                pr_attack=tuple(1.0 if decided else 0.0 for decided in outputs),
                method="closed-form",
            )
        )
    return results


def supports(protocol: Protocol, topology: Topology) -> bool:
    """Whether the vectorized backend can evaluate this pair exactly.

    Only the *exact* protocol classes are accepted (``type`` match, not
    ``isinstance``): the ablated and variant subclasses change the
    counting semantics, so they must take the reference path.
    """
    from ..protocols.protocol_s import ProtocolS
    from ..protocols.weak_adversary import ProtocolW

    if topology.num_processes > MAX_VECTORIZED_PROCESSES:
        return False
    if type(protocol) is ProtocolS:
        return protocol.supports_topology(topology)
    if type(protocol) is ProtocolW:
        return True
    return False


def evaluate_batch(
    protocol: Protocol, topology: Topology, runs: Sequence[Run]
) -> List[EventProbabilities]:
    """Evaluate a uniform-horizon batch of runs on a supported protocol."""
    from ..protocols.protocol_s import ProtocolS
    from ..protocols.weak_adversary import ProtocolW

    if not runs:
        return []
    num_rounds = runs[0].num_rounds
    delivered, inputs = runs_to_tensors(topology, num_rounds, runs)
    if type(protocol) is ProtocolS:
        counts, rknown = simulate_counting_batch(
            topology,
            delivered,
            inputs,
            rfire_gated=True,
            coordinator=protocol.coordinator,
        )
        return _protocol_s_results(counts, rknown, protocol.epsilon)
    if type(protocol) is ProtocolW:
        counts, _ = simulate_counting_batch(
            topology, delivered, inputs, rfire_gated=False
        )
        return _protocol_w_results(counts, protocol.threshold)
    raise ValueError(
        f"protocol {protocol.name!r} is not supported by the vectorized "
        "backend"
    )


# ----------------------------------------------------------------------
# Two-general fast paths (the former analysis.fast_mc kernels).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PairCounts:
    """Vectorized final states for a batch of two-general runs."""

    count_1: np.ndarray
    count_2: np.ndarray
    rfire_heard_2: np.ndarray  # process 1 always knows rfire


def simulate_pair_counts(
    delivered_1_to_2: np.ndarray,
    delivered_2_to_1: np.ndarray,
    input_1: bool = True,
    input_2: bool = True,
) -> PairCounts:
    """Run the ``m = 2`` rfire-gated counting recurrence over a batch.

    ``delivered_x_to_y`` are boolean arrays of shape
    ``(num_runs, num_rounds)``: whether the round-``r`` message on that
    directed link is delivered.  Returns the final counts (which equal
    the modified levels, Lemma 6.4) and whether process 2 ever heard
    ``rfire``.  On the pair topology the ``seen`` set fills instantly,
    so the Figure 1 machine collapses to this two-variable recurrence.
    """
    if delivered_1_to_2.shape != delivered_2_to_1.shape:
        raise ValueError("delivery matrices must have identical shape")
    num_runs, num_rounds = delivered_1_to_2.shape
    c1 = np.zeros(num_runs, dtype=np.int64)
    c2 = np.zeros(num_runs, dtype=np.int64)
    v1 = np.full(num_runs, bool(input_1))
    v2 = np.full(num_runs, bool(input_2))
    f2 = np.zeros(num_runs, dtype=bool)
    c1[v1] = 1  # the coordinator holds rfire from the start
    for round_number in range(num_rounds):
        d12 = delivered_1_to_2[:, round_number]
        d21 = delivered_2_to_1[:, round_number]
        prev_c1 = c1
        prev_c2 = c2
        prev_v1 = v1
        prev_v2 = v2
        v1 = v1 | (d21 & prev_v2)
        v2 = v2 | (d12 & prev_v1)
        f2 = f2 | d12
        c1 = np.where((prev_c1 == 0) & v1, np.int64(1), prev_c1)
        c2 = np.where((prev_c2 == 0) & v2 & f2, np.int64(1), prev_c2)
        c1 = np.where(d21 & (prev_c2 >= 1), np.maximum(c1, prev_c2 + 1), c1)
        c2 = np.where(d12 & (prev_c1 >= 1), np.maximum(c2, prev_c1 + 1), c2)
    return PairCounts(count_1=c1, count_2=c2, rfire_heard_2=f2)


def simulate_pair_counts_valid_gated(
    delivered_1_to_2: np.ndarray, delivered_2_to_1: np.ndarray
) -> PairCounts:
    """The valid-gated (Protocol W) pair recurrence: counts track L_i.

    Both inputs are assumed present, so every count is >= 1 from the
    start and the `count >= 1` gates of the general recurrence are
    always open — which leaves two fused max/where updates per round.
    """
    num_runs, num_rounds = delivered_1_to_2.shape
    c1 = np.ones(num_runs, dtype=np.int64)  # both inputs present
    c2 = np.ones(num_runs, dtype=np.int64)
    for round_number in range(num_rounds):
        d12 = delivered_1_to_2[:, round_number]
        d21 = delivered_2_to_1[:, round_number]
        new_c1 = np.where(d21, np.maximum(c1, c2 + 1), c1)
        c2 = np.where(d12, np.maximum(c2, c1 + 1), c2)
        c1 = new_c1
    return PairCounts(
        count_1=c1,
        count_2=c2,
        rfire_heard_2=np.ones(num_runs, dtype=bool),
    )


def sample_pair_deliveries(
    num_runs: int,
    num_rounds: Round,
    loss_probability: float,
    rng: np.random.Generator,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw i.i.d.-loss delivery matrices for a batch of pair runs.

    ``dtype`` selects the uniform-draw precision: ``float64`` matches
    the historical ``analysis.fast_mc`` sampling bit-for-bit, while
    ``float32`` halves the sampling cost (the engine's default for its
    own sweeps — a Bernoulli threshold does not need 53 bits).
    """
    keep = dtype(1.0 - loss_probability)
    d12 = rng.random((num_runs, num_rounds), dtype=dtype) < keep
    d21 = rng.random((num_runs, num_rounds), dtype=dtype) < keep
    return d12, d21


def pair_protocol_s_weak_estimate(
    num_rounds: Round,
    epsilon: float,
    loss_probability: float,
    samples: int,
    rng: np.random.Generator,
    dtype=np.float32,
):
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol S under i.i.d. loss.

    Per sampled run the probabilities are exact (the closed form in
    threshold space); only the run draw is sampled.  Returns a
    :class:`repro.adversary.weak.WeakAdversaryEstimate`.
    """
    from ..adversary.weak import WeakAdversaryEstimate

    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must be in (0, 1]")
    d12, d21 = sample_pair_deliveries(
        samples, num_rounds, loss_probability, rng, dtype
    )
    counts = simulate_pair_counts(d12, d21)
    t = 1.0 / epsilon
    a1 = counts.count_1.astype(np.float64)
    a2 = np.where(counts.rfire_heard_2, counts.count_2, 0).astype(np.float64)
    pr1 = np.minimum(1.0, a1 / t)
    pr2 = np.minimum(1.0, a2 / t)
    pr_ta = np.minimum(pr1, pr2)
    pr_pa = np.abs(pr1 - pr2)
    return WeakAdversaryEstimate(
        expected_liveness=float(pr_ta.mean()),
        expected_unsafety=float(pr_pa.mean()),
        disagreement_runs=int(np.count_nonzero(pr_pa > 0)),
        samples=samples,
    )


def pair_protocol_w_weak_estimate(
    num_rounds: Round,
    threshold: int,
    loss_probability: float,
    samples: int,
    rng: np.random.Generator,
    dtype=np.float32,
):
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol W under i.i.d. loss."""
    from ..adversary.weak import WeakAdversaryEstimate

    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    d12, d21 = sample_pair_deliveries(
        samples, num_rounds, loss_probability, rng, dtype
    )
    counts = simulate_pair_counts_valid_gated(d12, d21)
    attack_1 = counts.count_1 >= threshold
    attack_2 = counts.count_2 >= threshold
    pr_ta = (attack_1 & attack_2).astype(np.float64)
    pr_pa = (attack_1 ^ attack_2).astype(np.float64)
    return WeakAdversaryEstimate(
        expected_liveness=float(pr_ta.mean()),
        expected_unsafety=float(pr_pa.mean()),
        disagreement_runs=int(np.count_nonzero(pr_pa > 0)),
        samples=samples,
    )
