"""The vectorized backend: numpy batch evaluation of counting protocols.

This module generalizes the two-general recurrence that used to live
in :mod:`repro.analysis.fast_mc` to *arbitrary* topologies and batches
of runs.  The Figure 1 counting machine (shared by Protocols S and W,
see :mod:`repro.protocols.counting`) has integer state — ``count``, a
``seen`` set, and the ``valid`` / ``rfire``-heard flags — all of which
vectorize across a batch of runs:

* ``seen`` sets become per-process bitmasks (one ``int64`` lane per
  run), so the Figure 1 ``highseen`` union is a bitwise OR;
* deliveries become a boolean tensor ``(batch, round, directed link)``;
* one python-level loop remains over rounds × processes × in-neighbors
  (all tiny), with every operation applying to the whole batch.

Because the counting state is integral, the batch kernel reproduces
the reference simulator *exactly* — not approximately — and the
closed-form probability formulas applied on top are transcribed
operation-for-operation from ``ProtocolS.closed_form_probabilities`` /
``ProtocolW.closed_form_probabilities`` so the floats are bit-identical
too.  The property tests in ``tests/engine/test_parity.py`` enforce
this on random connected topologies, runs, and tapes.

The specialized two-general kernels (``simulate_pair_counts`` and the
valid-gated variant) remain as fast paths for the huge weak-adversary
sample sweeps; :mod:`repro.analysis.fast_mc` now delegates to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..core.packed import PackedRun, RunBatch, layout_for
from ..core.probability import EventProbabilities
from ..core.protocol import Protocol
from ..core.run import Run
from ..core.topology import Topology
from ..core.types import ProcessId, Round

# ``seen`` bitmasks live in int64 lanes; one bit per process.
MAX_VECTORIZED_PROCESSES = 62


# ----------------------------------------------------------------------
# Topology plans: per-process in-link gather indices, cached.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _TopologyPlan:
    """Link ordering and per-process gather indices for one topology."""

    num_processes: int
    links: Tuple[Tuple[ProcessId, ProcessId], ...]
    link_index: Dict[Tuple[ProcessId, ProcessId], int]
    # For each 0-indexed process: (link column indices, sender 0-indices).
    in_links: Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...]


@lru_cache(maxsize=128)
def _plan(topology: Topology) -> _TopologyPlan:
    links = tuple(topology.directed_links())
    link_index = {link: k for k, link in enumerate(links)}
    in_links = []
    for process in topology.processes:
        columns = []
        senders = []
        for k, (source, target) in enumerate(links):
            if target == process:
                columns.append(k)
                senders.append(source - 1)
        in_links.append((tuple(columns), tuple(senders)))
    return _TopologyPlan(
        num_processes=topology.num_processes,
        links=links,
        link_index=link_index,
        in_links=tuple(in_links),
    )


def runs_to_tensors(
    topology: Topology, num_rounds: Round, runs: Sequence[Run]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack runs into ``(delivered, inputs)`` boolean tensors.

    ``delivered`` has shape ``(batch, num_rounds, num_directed_links)``
    with the link order of :meth:`Topology.directed_links`; ``inputs``
    has shape ``(batch, num_processes)``.  Raises ``ValueError`` for a
    run that does not fit the topology or horizon (the same conditions
    the reference simulator rejects).

    Routed through :mod:`repro.core.packed`: each run becomes one
    bitmask (the ``RunLayout`` link order is by construction the
    ``_plan`` link order) and the tensors are extracted from the
    resulting :class:`RunBatch` in one vectorized pass.
    """
    layout = layout_for(topology, num_rounds)
    batch = RunBatch.from_bits(
        layout, (layout.pack_bits(run) for run in runs)
    )
    return batch.tensors()


# ----------------------------------------------------------------------
# The generalized counting kernel.
# ----------------------------------------------------------------------


@dataclass
class CountingState:
    """The Figure 1 machine's batched state at one round boundary.

    All arrays have shape ``(batch, m)``.  The state before round
    ``q`` depends only on deliveries in rounds ``< q``, which is what
    makes single-bit neighbor evaluation incremental: a run differing
    from its parent only in a round-``q`` delivery resumes from the
    parent's saved state instead of re-simulating rounds ``1..q-1``
    (:func:`evaluate_neighbor_batch`).
    """

    count: np.ndarray
    seen: np.ndarray
    valid: np.ndarray
    rknown: np.ndarray

    def tiled(self, lanes: int) -> "CountingState":
        """A single-run state broadcast to ``lanes`` independent lanes."""
        if self.count.shape[0] != 1:
            raise ValueError("tiled() expects a single-run state")
        return CountingState(
            count=np.repeat(self.count, lanes, axis=0),
            seen=np.repeat(self.seen, lanes, axis=0),
            valid=np.repeat(self.valid, lanes, axis=0),
            rknown=np.repeat(self.rknown, lanes, axis=0),
        )


def _initial_state(
    plan: _TopologyPlan,
    inputs: np.ndarray,
    rfire_gated: bool,
    coordinator: ProcessId,
) -> CountingState:
    """The pre-round-1 state of the Figure 1 machine."""
    m = plan.num_processes
    batch = inputs.shape[0]
    own = np.array([np.int64(1) << i for i in range(m)], dtype=np.int64)
    valid = inputs.copy()
    rknown = np.zeros((batch, m), dtype=bool)
    if rfire_gated:
        # Only the coordinator holds a defined rfire at the start (the
        # other processes' tapes are constant None).
        rknown[:, coordinator - 1] = True
        counting0 = valid & rknown
    else:
        counting0 = valid
    count = np.where(counting0, np.int64(1), np.int64(0))
    seen = np.where(counting0, own[None, :], np.int64(0))
    return CountingState(count=count, seen=seen, valid=valid, rknown=rknown)


def _advance_rounds(
    plan: _TopologyPlan,
    delivered: np.ndarray,
    state: CountingState,
    rfire_gated: bool,
) -> CountingState:
    """Advance the counting machine over ``delivered.shape[1]`` rounds.

    The single source of truth for the round transition — full
    simulation, the per-round history, and incremental resumption all
    go through this loop, so they are bit-identical by construction.
    The input ``state`` is not mutated; a fresh state is returned.
    """
    m = plan.num_processes
    own = np.array([np.int64(1) << i for i in range(m)], dtype=np.int64)
    full_mask = np.int64((1 << m) - 1)
    count = state.count
    seen = state.seen
    valid = state.valid
    rknown = state.rknown

    for round_number in range(delivered.shape[1]):
        d = delivered[:, round_number, :]
        prev_count = count
        prev_seen = seen
        prev_valid = valid
        prev_rknown = rknown
        count = prev_count.copy()
        seen = prev_seen.copy()
        valid = prev_valid.copy()
        rknown = prev_rknown.copy()
        for i in range(m):
            columns, senders = plan.in_links[i]
            if not columns:
                continue
            dcols = d[:, columns]
            any_msg = dcols.any(axis=1)
            # Figure 1 lines 1-2: adopt rfire and validity.
            rknown_i = prev_rknown[:, i] | (
                dcols & prev_rknown[:, senders]
            ).any(axis=1)
            valid_i = prev_valid[:, i] | (
                dcols & prev_valid[:, senders]
            ).any(axis=1)
            # Line 3: start counting.
            can_start = (prev_count[:, i] == 0) & valid_i
            if rfire_gated:
                can_start &= rknown_i
            ci = np.where(can_start, np.int64(1), prev_count[:, i])
            si = np.where(can_start, own[i], prev_seen[:, i])
            # Counting block: merge the highest delivered count.
            active = (ci >= 1) & any_msg
            sender_counts = np.where(
                dcols, prev_count[:, senders], np.int64(-1)
            )
            high = sender_counts.max(axis=1)
            is_high = dcols & (sender_counts == high[:, None])
            highseen = np.bitwise_or.reduce(
                np.where(is_high, prev_seen[:, senders], np.int64(0)), axis=1
            )
            equal = active & (high == ci)
            greater = active & (high > ci)
            si = np.where(equal, si | highseen | own[i], si)
            si = np.where(greater, highseen | own[i], si)
            ci = np.where(greater, high, ci)
            wrap = active & (si == full_mask)
            ci = np.where(wrap, ci + 1, ci)
            si = np.where(wrap, own[i], si)
            count[:, i] = ci
            seen[:, i] = si
            valid[:, i] = valid_i
            rknown[:, i] = rknown_i
    return CountingState(count=count, seen=seen, valid=valid, rknown=rknown)


def _check_kernel_shapes(
    plan: _TopologyPlan, delivered: np.ndarray
) -> None:
    m = plan.num_processes
    if m > MAX_VECTORIZED_PROCESSES:
        raise ValueError(
            f"vectorized kernel supports at most {MAX_VECTORIZED_PROCESSES} "
            f"processes, got {m}"
        )
    if delivered.shape[2] != len(plan.links):
        raise ValueError("delivery tensor does not match the topology")


def simulate_counting_batch(
    topology: Topology,
    delivered: np.ndarray,
    inputs: np.ndarray,
    rfire_gated: bool,
    coordinator: ProcessId = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the Figure 1 counting machine over a batch of runs.

    Returns ``(counts, rfire_known)`` of shape ``(batch, m)``: the
    final ``count_i`` values and whether each process ever heard the
    coordinator's ``rfire`` draw.  With ``rfire_gated`` the start rule
    is Protocol S's (valid *and* rfire known); otherwise counting is
    valid-gated (Protocol W, plain level tracking).

    The transition is a line-for-line vectorization of
    ``CountingLocal.transition``; ``seen`` sets are bitmasks.
    """
    plan = _plan(topology)
    _check_kernel_shapes(plan, delivered)
    state = _initial_state(plan, inputs, rfire_gated, coordinator)
    final = _advance_rounds(plan, delivered, state, rfire_gated)
    return final.count, final.rknown


def simulate_counting_history(
    topology: Topology,
    delivered: np.ndarray,
    inputs: np.ndarray,
    rfire_gated: bool,
    coordinator: ProcessId = 1,
) -> List[CountingState]:
    """Run the counting machine, keeping the state at every boundary.

    Returns ``num_rounds + 1`` states: ``states[k]`` is the state
    after ``k`` rounds (``states[0]`` is pre-round-1).  Each round is
    advanced through the same :func:`_advance_rounds` loop as the flat
    simulation, so ``states[-1]`` equals the
    :func:`simulate_counting_batch` result exactly.
    """
    plan = _plan(topology)
    _check_kernel_shapes(plan, delivered)
    state = _initial_state(plan, inputs, rfire_gated, coordinator)
    states = [state]
    for round_number in range(delivered.shape[1]):
        state = _advance_rounds(
            plan,
            delivered[:, round_number : round_number + 1, :],
            state,
            rfire_gated,
        )
        states.append(state)
    return states


# ----------------------------------------------------------------------
# Per-protocol closed-form fast paths.
# ----------------------------------------------------------------------


def _protocol_s_results(
    counts: np.ndarray, rknown: np.ndarray, epsilon: float
) -> List[EventProbabilities]:
    """Protocol S probabilities from batch counts — transcribed
    operation-for-operation from ``ProtocolS.closed_form_probabilities``
    so the floats match the reference bit-for-bit."""
    t = 1.0 / epsilon
    thresholds = np.where(rknown, counts, np.int64(0))
    results: List[EventProbabilities] = []
    for row in thresholds:
        ordered = [int(a) for a in row]
        low = min(ordered)
        high = max(ordered)
        pr_ta = min(1.0, low / t)
        pr_na = max(0.0, 1.0 - high / t)
        pr_pa = max(0.0, 1.0 - pr_ta - pr_na)
        results.append(
            EventProbabilities(
                pr_total_attack=pr_ta,
                pr_no_attack=pr_na,
                pr_partial_attack=pr_pa,
                pr_attack=tuple(min(1.0, a / t) for a in ordered),
                method="closed-form",
            )
        )
    return results


def _protocol_w_results(
    counts: np.ndarray, threshold: int
) -> List[EventProbabilities]:
    """Protocol W probabilities (deterministic 0/1) from batch counts."""
    attacks = counts >= threshold
    results: List[EventProbabilities] = []
    for row in attacks:
        outputs = [bool(decided) for decided in row]
        all_attack = all(outputs)
        none_attack = not any(outputs)
        results.append(
            EventProbabilities(
                pr_total_attack=1.0 if all_attack else 0.0,
                pr_no_attack=1.0 if none_attack else 0.0,
                pr_partial_attack=(
                    1.0 if not (all_attack or none_attack) else 0.0
                ),
                pr_attack=tuple(1.0 if decided else 0.0 for decided in outputs),
                method="closed-form",
            )
        )
    return results


def supports(protocol: Protocol, topology: Topology) -> bool:
    """Whether the vectorized backend can evaluate this pair exactly.

    Only the *exact* protocol classes are accepted (``type`` match, not
    ``isinstance``): the ablated and variant subclasses change the
    counting semantics, so they must take the reference path.
    """
    from ..protocols.protocol_s import ProtocolS
    from ..protocols.weak_adversary import ProtocolW

    if topology.num_processes > MAX_VECTORIZED_PROCESSES:
        return False
    if type(protocol) is ProtocolS:
        return protocol.supports_topology(topology)
    if type(protocol) is ProtocolW:
        return True
    return False


def _protocol_kernel(
    protocol: Protocol,
) -> Tuple[
    bool,
    ProcessId,
    Callable[[np.ndarray, np.ndarray], List[EventProbabilities]],
]:
    """Dispatch a supported protocol to its kernel configuration.

    Returns ``(rfire_gated, coordinator, finisher)`` where ``finisher``
    maps the final ``(counts, rknown)`` arrays to per-run exact
    probabilities.  Raises ``ValueError`` for unsupported protocols.
    """
    from ..protocols.protocol_s import ProtocolS
    from ..protocols.weak_adversary import ProtocolW

    if type(protocol) is ProtocolS:
        epsilon = protocol.epsilon

        def finish_s(
            counts: np.ndarray, rknown: np.ndarray
        ) -> List[EventProbabilities]:
            return _protocol_s_results(counts, rknown, epsilon)

        return True, protocol.coordinator, finish_s
    if type(protocol) is ProtocolW:
        threshold = protocol.threshold

        def finish_w(
            counts: np.ndarray, rknown: np.ndarray
        ) -> List[EventProbabilities]:
            return _protocol_w_results(counts, threshold)

        return False, 1, finish_w
    raise ValueError(
        f"protocol {protocol.name!r} is not supported by the vectorized "
        "backend"
    )


def evaluate_batch(
    protocol: Protocol, topology: Topology, runs: Sequence[Run]
) -> List[EventProbabilities]:
    """Evaluate a uniform-horizon batch of runs on a supported protocol."""
    if not runs:
        return []
    num_rounds = runs[0].num_rounds
    batch = RunBatch.from_runs(topology, num_rounds, runs)
    return evaluate_packed_batch(protocol, topology, batch)


def evaluate_packed_batch(
    protocol: Protocol, topology: Topology, batch: RunBatch
) -> List[EventProbabilities]:
    """Evaluate a :class:`RunBatch` directly — no per-run unpacking.

    The packed words are the wire form all the way from enumeration:
    tensors come out of :meth:`RunBatch.tensors` as one bit-extraction
    pass and feed the counting kernel unchanged, so the results are
    bit-identical to :func:`evaluate_batch` over the unpacked runs.
    """
    if batch.layout.topology != topology:
        raise ValueError("batch layout does not match the topology")
    if len(batch) == 0:
        return []
    rfire_gated, coordinator, finish = _protocol_kernel(protocol)
    delivered, inputs = batch.tensors()
    counts, rknown = simulate_counting_batch(
        topology, delivered, inputs, rfire_gated, coordinator
    )
    return finish(counts, rknown)


def evaluate_neighbor_batch(
    protocol: Protocol, topology: Topology, parent: PackedRun
) -> Tuple[EventProbabilities, List[EventProbabilities]]:
    """Evaluate a run and every single-bit neighbor incrementally.

    Returns ``(parent_result, by_bit)`` where ``by_bit[b]`` is the
    exact result for the parent with bit ``b`` flipped (every bit of
    the layout appears).  The parent is simulated once with its
    per-round state history retained; a neighbor differing in a
    round-``q`` delivery shares the parent's prefix state before round
    ``q`` (the counting machine is causal), so only rounds ``q..N``
    are re-simulated — all ``L`` round-``q`` neighbors in one resumed
    batch.  Input-bit flips change the initial state and take a full
    (but still batched) re-simulation.  Every lane goes through the
    same :func:`_advance_rounds` loop as a from-scratch evaluation,
    so the results are bit-identical to it.
    """
    layout = parent.layout
    if layout.topology != topology:
        raise ValueError("parent layout does not match the topology")
    rfire_gated, coordinator, finish = _protocol_kernel(protocol)
    plan = _plan(topology)
    m = layout.num_processes
    num_links = layout.num_links
    delivered, inputs = RunBatch.from_bits(
        layout, (parent.bits,)
    ).tensors()
    states = simulate_counting_history(
        topology, delivered, inputs, rfire_gated, coordinator
    )
    parent_result = finish(states[-1].count, states[-1].rknown)[0]
    by_bit: List[EventProbabilities] = [parent_result] * layout.num_bits

    # Input-bit neighbors: the flip changes the initial state, so the
    # whole horizon re-runs — one m-lane batch.
    flipped_inputs = np.repeat(inputs, m, axis=0)
    flipped_inputs[np.arange(m), np.arange(m)] ^= True
    counts, rknown = simulate_counting_batch(
        topology,
        np.repeat(delivered, m, axis=0),
        flipped_inputs,
        rfire_gated,
        coordinator,
    )
    for process_index, result in enumerate(finish(counts, rknown)):
        by_bit[process_index] = result

    # Message-bit neighbors, grouped by round: resume the L round-q
    # lanes from the parent's pre-round-q state and advance the
    # suffix only.
    lanes = np.arange(num_links)
    for flip_round in range(1, layout.num_rounds + 1):
        suffix = np.repeat(delivered[:, flip_round - 1 :, :], num_links, axis=0)
        suffix[lanes, 0, lanes] ^= True
        resumed = _advance_rounds(
            plan, suffix, states[flip_round - 1].tiled(num_links), rfire_gated
        )
        results = finish(resumed.count, resumed.rknown)
        base = m + (flip_round - 1) * num_links
        for link_index, result in enumerate(results):
            by_bit[base + link_index] = result
    return parent_result, by_bit


# ----------------------------------------------------------------------
# Two-general fast paths (the former analysis.fast_mc kernels).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PairCounts:
    """Vectorized final states for a batch of two-general runs."""

    count_1: np.ndarray
    count_2: np.ndarray
    rfire_heard_2: np.ndarray  # process 1 always knows rfire


def simulate_pair_counts(
    delivered_1_to_2: np.ndarray,
    delivered_2_to_1: np.ndarray,
    input_1: bool = True,
    input_2: bool = True,
) -> PairCounts:
    """Run the ``m = 2`` rfire-gated counting recurrence over a batch.

    ``delivered_x_to_y`` are boolean arrays of shape
    ``(num_runs, num_rounds)``: whether the round-``r`` message on that
    directed link is delivered.  Returns the final counts (which equal
    the modified levels, Lemma 6.4) and whether process 2 ever heard
    ``rfire``.  On the pair topology the ``seen`` set fills instantly,
    so the Figure 1 machine collapses to this two-variable recurrence.
    """
    if delivered_1_to_2.shape != delivered_2_to_1.shape:
        raise ValueError("delivery matrices must have identical shape")
    num_runs, num_rounds = delivered_1_to_2.shape
    c1 = np.zeros(num_runs, dtype=np.int64)
    c2 = np.zeros(num_runs, dtype=np.int64)
    v1 = np.full(num_runs, bool(input_1))
    v2 = np.full(num_runs, bool(input_2))
    f2 = np.zeros(num_runs, dtype=bool)
    c1[v1] = 1  # the coordinator holds rfire from the start
    for round_number in range(num_rounds):
        d12 = delivered_1_to_2[:, round_number]
        d21 = delivered_2_to_1[:, round_number]
        prev_c1 = c1
        prev_c2 = c2
        prev_v1 = v1
        prev_v2 = v2
        v1 = v1 | (d21 & prev_v2)
        v2 = v2 | (d12 & prev_v1)
        f2 = f2 | d12
        c1 = np.where((prev_c1 == 0) & v1, np.int64(1), prev_c1)
        c2 = np.where((prev_c2 == 0) & v2 & f2, np.int64(1), prev_c2)
        c1 = np.where(d21 & (prev_c2 >= 1), np.maximum(c1, prev_c2 + 1), c1)
        c2 = np.where(d12 & (prev_c1 >= 1), np.maximum(c2, prev_c1 + 1), c2)
    return PairCounts(count_1=c1, count_2=c2, rfire_heard_2=f2)


def simulate_pair_counts_valid_gated(
    delivered_1_to_2: np.ndarray, delivered_2_to_1: np.ndarray
) -> PairCounts:
    """The valid-gated (Protocol W) pair recurrence: counts track L_i.

    Both inputs are assumed present, so every count is >= 1 from the
    start and the `count >= 1` gates of the general recurrence are
    always open — which leaves two fused max/where updates per round.
    """
    num_runs, num_rounds = delivered_1_to_2.shape
    c1 = np.ones(num_runs, dtype=np.int64)  # both inputs present
    c2 = np.ones(num_runs, dtype=np.int64)
    for round_number in range(num_rounds):
        d12 = delivered_1_to_2[:, round_number]
        d21 = delivered_2_to_1[:, round_number]
        new_c1 = np.where(d21, np.maximum(c1, c2 + 1), c1)
        c2 = np.where(d12, np.maximum(c2, c1 + 1), c2)
        c1 = new_c1
    return PairCounts(
        count_1=c1,
        count_2=c2,
        rfire_heard_2=np.ones(num_runs, dtype=bool),
    )


def sample_pair_deliveries(
    num_runs: int,
    num_rounds: Round,
    loss_probability: float,
    rng: np.random.Generator,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw i.i.d.-loss delivery matrices for a batch of pair runs.

    ``dtype`` selects the uniform-draw precision: ``float64`` matches
    the historical ``analysis.fast_mc`` sampling bit-for-bit, while
    ``float32`` halves the sampling cost (the engine's default for its
    own sweeps — a Bernoulli threshold does not need 53 bits).
    """
    keep = dtype(1.0 - loss_probability)
    d12 = rng.random((num_runs, num_rounds), dtype=dtype) < keep
    d21 = rng.random((num_runs, num_rounds), dtype=dtype) < keep
    return d12, d21


def pair_protocol_s_weak_estimate(
    num_rounds: Round,
    epsilon: float,
    loss_probability: float,
    samples: int,
    rng: np.random.Generator,
    dtype=np.float32,
):
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol S under i.i.d. loss.

    Per sampled run the probabilities are exact (the closed form in
    threshold space); only the run draw is sampled.  Returns a
    :class:`repro.adversary.weak.WeakAdversaryEstimate`.
    """
    from ..adversary.weak import WeakAdversaryEstimate

    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must be in (0, 1]")
    d12, d21 = sample_pair_deliveries(
        samples, num_rounds, loss_probability, rng, dtype
    )
    counts = simulate_pair_counts(d12, d21)
    t = 1.0 / epsilon
    a1 = counts.count_1.astype(np.float64)
    a2 = np.where(counts.rfire_heard_2, counts.count_2, 0).astype(np.float64)
    pr1 = np.minimum(1.0, a1 / t)
    pr2 = np.minimum(1.0, a2 / t)
    pr_ta = np.minimum(pr1, pr2)
    pr_pa = np.abs(pr1 - pr2)
    return WeakAdversaryEstimate(
        expected_liveness=float(pr_ta.mean()),
        expected_unsafety=float(pr_pa.mean()),
        disagreement_runs=int(np.count_nonzero(pr_pa > 0)),
        samples=samples,
    )


def pair_protocol_w_weak_estimate(
    num_rounds: Round,
    threshold: int,
    loss_probability: float,
    samples: int,
    rng: np.random.Generator,
    dtype=np.float32,
):
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol W under i.i.d. loss."""
    from ..adversary.weak import WeakAdversaryEstimate

    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    d12, d21 = sample_pair_deliveries(
        samples, num_rounds, loss_probability, rng, dtype
    )
    counts = simulate_pair_counts_valid_gated(d12, d21)
    attack_1 = counts.count_1 >= threshold
    attack_2 = counts.count_2 >= threshold
    pr_ta = (attack_1 & attack_2).astype(np.float64)
    pr_pa = (attack_1 ^ attack_2).astype(np.float64)
    return WeakAdversaryEstimate(
        expected_liveness=float(pr_ta.mean()),
        expected_unsafety=float(pr_pa.mean()),
        disagreement_runs=int(np.count_nonzero(pr_pa > 0)),
        samples=samples,
    )
