"""The :class:`Engine` facade: batched, cached, instrumented evaluation.

Every layer that needs ``Pr[X | R]`` — the probability module, the
worst-run searches, the weak-adversary estimators, the experiment
runners — goes through an :class:`Engine` rather than calling the
simulator directly.  The engine picks a backend per call:

* ``reference`` — the pure-python simulator via
  :func:`repro.core.probability.evaluate`, unchanged semantics;
* ``vectorized`` — the numpy batch kernel of
  :mod:`repro.engine.vectorized` wherever it supports the
  (protocol, topology) pair exactly, reference otherwise;
* ``auto`` — vectorize exactly-supported batches once they are large
  enough to amortize tensor packing, reference for everything else.

Because the vectorized backend is bit-identical to the reference
closed forms (enforced by the parity test suite), switching backends
never changes a claim check — only wall time.

Results whose method is exact (closed form or enumeration) are
memoized in a bounded FIFO cache keyed on the hashable, immutable
``(protocol, topology, run)`` triple, so greedy and random searches
stop re-simulating duplicate neighbors and repeated certification
passes (e.g. E16's family search after an exhaustive sweep) become
cache hits.  Monte-Carlo results are never cached: caching them would
silently freeze sampling noise and perturb downstream rng streams.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.probability import (
    DEFAULT_ENUMERATION_LIMIT,
    DEFAULT_TRIALS,
    EventProbabilities,
    evaluate,
)
from ..core.protocol import Protocol
from ..core.run import Run
from ..core.topology import Topology
from ..core.types import Round

BACKENDS = ("auto", "reference", "vectorized")

# Under ``auto``, batches smaller than this stay on the reference path:
# packing tensors for a handful of runs costs more than it saves.
MIN_VECTORIZED_BATCH = 8

# FIFO memo-cache bound — generous for the run counts the experiments
# enumerate (tens of thousands) while keeping worst-case memory modest.
DEFAULT_CACHE_SIZE = 200_000


@dataclass
class EngineStats:
    """Counters accumulated across an engine's lifetime.

    ``runs_evaluated`` counts every run requested (cache hits
    included); the per-backend counters count actual evaluations.
    """

    runs_evaluated: int = 0
    reference_evaluations: int = 0
    vectorized_evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batch_calls: int = 0
    wall_time_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "runs_evaluated": self.runs_evaluated,
            "reference_evaluations": self.reference_evaluations,
            "vectorized_evaluations": self.vectorized_evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "batch_calls": self.batch_calls,
            "wall_time_seconds": round(self.wall_time_seconds, 4),
        }


@dataclass
class Engine:
    """Facade over the reference and vectorized evaluation backends."""

    backend: str = "auto"
    cache_size: int = DEFAULT_CACHE_SIZE
    min_vectorized_batch: int = MIN_VECTORIZED_BATCH
    stats: EngineStats = field(default_factory=EngineStats)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        self._cache: "OrderedDict[tuple, EventProbabilities]" = OrderedDict()

    # -- cache ---------------------------------------------------------

    def _cache_key(
        self,
        protocol: Protocol,
        topology: Topology,
        run: Run,
        method: str,
        trials: int,
    ) -> Optional[tuple]:
        try:
            return (hash(protocol), protocol, topology, run, method, trials)
        except TypeError:
            return None  # unhashable protocol: skip memoization

    def _cache_get(self, key: Optional[tuple]) -> Optional[EventProbabilities]:
        if key is None:
            return None
        result = self._cache.get(key)
        if result is not None:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
        return result

    def _cache_put(
        self, key: Optional[tuple], result: EventProbabilities
    ) -> None:
        if key is None or not result.is_exact() or self.cache_size <= 0:
            return
        if key not in self._cache and len(self._cache) >= self.cache_size:
            self._cache.popitem(last=False)
        self._cache[key] = result

    def clear_cache(self) -> None:
        self._cache.clear()

    def reset(self) -> None:
        """Zero the instrumentation and drop the memo cache.

        Called between experiment runs that share one
        :class:`~repro.experiments.common.Config`, so each report's
        engine note covers exactly one run (and repeated runs replay
        identically — no stale cache hits).
        """
        self.stats = EngineStats()
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    # -- backend selection --------------------------------------------

    def supports_vectorized(
        self, protocol: Protocol, topology: Topology
    ) -> bool:
        """Whether the numpy kernel evaluates this pair exactly."""
        from . import vectorized

        return vectorized.supports(protocol, topology)

    def _wants_vectorized(
        self,
        protocol: Protocol,
        topology: Topology,
        method: str,
        batch: int,
    ) -> bool:
        if self.backend == "reference":
            return False
        if method not in ("auto", "closed-form"):
            return False  # caller demanded enumeration / Monte Carlo
        if not self.supports_vectorized(protocol, topology):
            return False
        if self.backend == "vectorized":
            return True
        return batch >= self.min_vectorized_batch

    # -- evaluation ----------------------------------------------------

    def evaluate(
        self,
        protocol: Protocol,
        topology: Topology,
        run: Run,
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
        rng: Optional[random.Random] = None,
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> EventProbabilities:
        """Cached scalar evaluation (reference semantics)."""
        started = time.perf_counter()
        try:
            self.stats.runs_evaluated += 1
            key = self._cache_key(protocol, topology, run, method, trials)
            cached = self._cache_get(key)
            if cached is not None:
                return cached
            if self._wants_vectorized(protocol, topology, method, batch=1):
                from . import vectorized

                result = vectorized.evaluate_batch(protocol, topology, [run])[0]
                self.stats.vectorized_evaluations += 1
            else:
                result = evaluate(
                    protocol,
                    topology,
                    run,
                    method=method,
                    trials=trials,
                    rng=rng,
                    enumeration_limit=enumeration_limit,
                )
                self.stats.reference_evaluations += 1
            self._cache_put(key, result)
            return result
        finally:
            self.stats.wall_time_seconds += time.perf_counter() - started

    def evaluate_many(
        self,
        protocol: Protocol,
        topology: Topology,
        runs: Sequence[Run],
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
        rng: Optional[random.Random] = None,
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> List[EventProbabilities]:
        """Evaluate a batch of runs, in order, against one protocol.

        Semantically equivalent to mapping :meth:`evaluate` over
        ``runs`` (same results, same rng consumption for Monte-Carlo
        protocols); the vectorized backend and the memo cache only
        change how fast the answers arrive.
        """
        runs = list(runs)
        started = time.perf_counter()
        try:
            self.stats.batch_calls += 1
            self.stats.runs_evaluated += len(runs)
            results: List[Optional[EventProbabilities]] = [None] * len(runs)
            keys: List[Optional[tuple]] = [None] * len(runs)
            pending: List[int] = []
            for index, run in enumerate(runs):
                key = self._cache_key(protocol, topology, run, method, trials)
                keys[index] = key
                cached = self._cache_get(key)
                if cached is not None:
                    results[index] = cached
                else:
                    pending.append(index)
            if not pending:
                return [result for result in results if result is not None]
            if self._wants_vectorized(
                protocol, topology, method, batch=len(pending)
            ):
                self._evaluate_pending_vectorized(
                    protocol, topology, runs, results, keys, pending
                )
            else:
                for index in pending:
                    # Re-consult the cache so duplicate runs inside one
                    # batch are evaluated once (exact results only; the
                    # cache never stores Monte-Carlo estimates).
                    cached = self._cache.get(keys[index]) if keys[index] else None
                    if cached is not None:
                        results[index] = cached
                        continue
                    result = evaluate(
                        protocol,
                        topology,
                        runs[index],
                        method=method,
                        trials=trials,
                        rng=rng,
                        enumeration_limit=enumeration_limit,
                    )
                    self.stats.reference_evaluations += 1
                    self._cache_put(keys[index], result)
                    results[index] = result
            return [result for result in results if result is not None]
        finally:
            self.stats.wall_time_seconds += time.perf_counter() - started

    def _evaluate_pending_vectorized(
        self,
        protocol: Protocol,
        topology: Topology,
        runs: Sequence[Run],
        results: List[Optional[EventProbabilities]],
        keys: List[Optional[tuple]],
        pending: List[int],
    ) -> None:
        from . import vectorized

        # Deduplicate within the batch (closed-form results are pure),
        # and group by horizon: the kernel wants uniform num_rounds.
        by_horizon: Dict[Round, Dict[Run, List[int]]] = {}
        for index in pending:
            run = runs[index]
            by_horizon.setdefault(run.num_rounds, {}).setdefault(
                run, []
            ).append(index)
        for unique in by_horizon.values():
            unique_runs = list(unique.keys())
            batch_results = vectorized.evaluate_batch(
                protocol, topology, unique_runs
            )
            self.stats.vectorized_evaluations += len(unique_runs)
            for run, result in zip(unique_runs, batch_results):
                for index in unique[run]:
                    results[index] = result
                    self._cache_put(keys[index], result)

    # -- weak-adversary fast paths ------------------------------------

    def pair_weak_estimate_s(
        self,
        num_rounds: Round,
        epsilon: float,
        loss_probability: float,
        samples: int,
        rng,
    ):
        """Vectorized two-general ``E[L]``/``E[U]`` sweep for Protocol S."""
        from . import vectorized

        started = time.perf_counter()
        try:
            self.stats.runs_evaluated += samples
            self.stats.vectorized_evaluations += samples
            return vectorized.pair_protocol_s_weak_estimate(
                num_rounds, epsilon, loss_probability, samples, rng
            )
        finally:
            self.stats.wall_time_seconds += time.perf_counter() - started

    def pair_weak_estimate_w(
        self,
        num_rounds: Round,
        threshold: int,
        loss_probability: float,
        samples: int,
        rng,
    ):
        """Vectorized two-general ``E[L]``/``E[U]`` sweep for Protocol W."""
        from . import vectorized

        started = time.perf_counter()
        try:
            self.stats.runs_evaluated += samples
            self.stats.vectorized_evaluations += samples
            return vectorized.pair_protocol_w_weak_estimate(
                num_rounds, threshold, loss_probability, samples, rng
            )
        finally:
            self.stats.wall_time_seconds += time.perf_counter() - started


_default_engine: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide engine used when callers do not pass their own."""
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine()
    return _default_engine
