"""The :class:`Engine` facade: batched, cached, instrumented evaluation.

Every layer that needs ``Pr[X | R]`` — the probability module, the
worst-run searches, the weak-adversary estimators, the experiment
runners — goes through an :class:`Engine` rather than calling the
simulator directly.  The engine picks a backend per call:

* ``reference`` — the pure-python simulator via
  :func:`repro.core.probability.evaluate`, unchanged semantics;
* ``vectorized`` — the numpy batch kernel of
  :mod:`repro.engine.vectorized` wherever it supports the
  (protocol, topology) pair exactly, reference otherwise;
* ``auto`` — vectorize exactly-supported batches once they are large
  enough to amortize tensor packing, reference for everything else.

Because the vectorized backend is bit-identical to the reference
closed forms (enforced by the parity test suite), switching backends
never changes a claim check — only wall time.

Results whose method is exact (closed form or enumeration) are
memoized in a pluggable :class:`~repro.engine.cache.EngineCache`
(default: a bounded FIFO :class:`~repro.engine.cache.InProcessCache`)
keyed on the hashable, immutable ``(protocol, topology, run)`` triple,
so greedy and random searches stop re-simulating duplicate neighbors
and repeated certification passes (e.g. E16's family search after an
exhaustive sweep) become cache hits.  Serving shards use the
snapshot-capable :class:`~repro.engine.cache.ShardLocalCache` variant
for warm starts.  Monte-Carlo results are never cached: caching them
would silently freeze sampling noise and perturb downstream rng
streams.

Instrumentation lives in :mod:`repro.obs`: each engine owns a
:class:`~repro.obs.MetricsRegistry` (``engine.*`` counters, the
``engine.evaluate.latency`` histogram, ``mc.trials``) and shares the
process tracer, so ``--trace`` captures engine spans without the
engine knowing who is listening.  :class:`EngineStats` survives as a
thin read view over that registry — same attribute and ``as_dict``
schema as the original counter dataclass.  Wall time counts **backend
work only**: cache hits cost a dict lookup and are excluded (they are
counted separately), so ``wall_time_seconds`` no longer inflates with
the hit rate.
"""

from __future__ import annotations

import logging
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.packed import PackedRun, RunBatch, layout_for
from ..core.probability import (
    DEFAULT_ENUMERATION_LIMIT,
    DEFAULT_TRIALS,
    EventProbabilities,
    evaluate,
)
from ..core.protocol import Protocol
from ..core.run import Run
from ..core.topology import Topology
from ..core.types import Round
from ..obs import MetricsRegistry, Obs, get_obs
from ..obs.runtime import monotonic
from .cache import EngineCache, InProcessCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..meanfield.counter import CounterRunSpec
    from ..meanfield.evaluate import CounterEvaluation

logger = logging.getLogger(__name__)

BACKENDS = ("auto", "reference", "vectorized", "meanfield")

#: Functions whose results the memo cache may store, by dotted
#: qualname.  Registration is a purity contract: these must be
#: deterministic, side-effect-free functions of their (immutable)
#: arguments — no globals, no argument mutation, no RNG or clock —
#: because a cache hit replays the stored value without re-running
#: them.  Rule RC005 of :mod:`repro.staticcheck` verifies the contract
#: statically; the Monte-Carlo paths are deliberately absent (their
#: results are never cached, see :meth:`Engine._cache_put`).
CACHEABLE_QUALNAMES: Tuple[str, ...] = (
    "repro.core.probability.exact_probabilities",
    "repro.engine.vectorized.evaluate_batch",
    "repro.engine.vectorized.evaluate_neighbor_batch",
    "repro.engine.vectorized.evaluate_packed_batch",
    "repro.meanfield.evaluate.evaluate_counter",
    "repro.meanfield.evaluate.evaluate_spec",
    "repro.protocols.ablations.NaiveCountingS.closed_form_probabilities",
    "repro.protocols.ablations.SkewedS.closed_form_probabilities",
    "repro.protocols.deterministic.DeterministicProtocol.closed_form_probabilities",
    "repro.protocols.message_validity.MessageValidityS.closed_form_probabilities",
    "repro.protocols.protocol_a.ProtocolA.closed_form_probabilities",
    "repro.protocols.protocol_m.ProtocolM.closed_form_probabilities",
    "repro.protocols.protocol_s.ProtocolS.closed_form_probabilities",
    "repro.protocols.repeated_a.RepeatedA.closed_form_probabilities",
    "repro.protocols.variants.EagerS.closed_form_probabilities",
    "repro.protocols.variants.GreedyS.closed_form_probabilities",
    "repro.protocols.weak_adversary.ProtocolW.closed_form_probabilities",
)

# Under ``auto``, batches smaller than this stay on the reference path:
# packing tensors for a handful of runs costs more than it saves.
MIN_VECTORIZED_BATCH = 8

# FIFO memo-cache bound — generous for the run counts the experiments
# enumerate (tens of thousands) while keeping worst-case memory modest.
DEFAULT_CACHE_SIZE = 200_000

# Bound for the engine-internal scaled-evaluation memo (parametric
# counter specs are tiny, but sweeps can generate many of them).
SCALED_CACHE_SIZE = 4_096


class EngineStats:
    """Read view over an engine's metrics registry.

    Keeps the attribute surface and ``as_dict`` schema of the original
    counter dataclass (``runs_evaluated`` counts every run requested,
    cache hits included; the per-backend counters count actual
    evaluations; ``wall_time_seconds`` is backend work only), while
    the registry remains the single source of truth — snapshots,
    merges, and JSON export come for free.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def _value(self, name: str):
        return self.registry.counter(name).value

    @property
    def runs_evaluated(self) -> int:
        return self._value("engine.runs_evaluated")

    @property
    def reference_evaluations(self) -> int:
        return self._value("engine.reference_evaluations")

    @property
    def vectorized_evaluations(self) -> int:
        return self._value("engine.vectorized_evaluations")

    @property
    def meanfield_evaluations(self) -> int:
        return self._value("engine.meanfield_evaluations")

    @property
    def cache_hits(self) -> int:
        return self._value("engine.cache.hit")

    @property
    def cache_misses(self) -> int:
        return self._value("engine.cache.miss")

    @property
    def batch_calls(self) -> int:
        return self._value("engine.batch_calls")

    @property
    def wall_time_seconds(self) -> float:
        return float(self._value("engine.wall_time_seconds"))

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "runs_evaluated": self.runs_evaluated,
            "reference_evaluations": self.reference_evaluations,
            "vectorized_evaluations": self.vectorized_evaluations,
            "meanfield_evaluations": self.meanfield_evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "batch_calls": self.batch_calls,
            "wall_time_seconds": round(self.wall_time_seconds, 4),
        }


class EngineBusyError(RuntimeError):
    """Cache maintenance attempted while evaluations are in flight."""


@dataclass
class Engine:
    """Facade over the reference and vectorized evaluation backends.

    **Thread affinity.** An engine instance is single-threaded by
    contract: evaluations (:meth:`evaluate`, :meth:`evaluate_many`,
    the pair fast paths) and cache maintenance (:meth:`clear_cache`,
    :meth:`reset`) must all run on one thread at a time.  The service
    tier honors this by giving each shard its own engine on a
    dedicated single-thread executor.  The contract is enforced, not
    just documented: :meth:`clear_cache` and :meth:`reset` raise
    :class:`EngineBusyError` if any evaluation is in flight (on this
    or any other thread) instead of mutating the memo cache under a
    concurrent reader; :attr:`cache_len` is always safe to read.

    **Cache.** The memo cache is pluggable (``cache=`` takes any
    :class:`~repro.engine.cache.EngineCache`); by default a bounded
    FIFO :class:`~repro.engine.cache.InProcessCache` of ``cache_size``
    entries.  Only exact results are ever stored.
    """

    backend: str = "auto"
    cache_size: int = DEFAULT_CACHE_SIZE
    min_vectorized_batch: int = MIN_VECTORIZED_BATCH
    obs: Optional[Obs] = None
    stats: Optional[EngineStats] = field(default=None, repr=False)
    cache: Optional[EngineCache] = field(default=None, repr=False)
    #: Optional audit hook fired after each timed evaluation with
    #: ``(operation, duration_seconds, attributes)``.  The serving
    #: tier installs one that appends an audit span record (joined to
    #: the executing micro-batch via the engine thread's batch
    #: context), giving every stitched request tree cache hit/miss
    #: provenance without the engine knowing about audit logs.  Runs
    #: on the evaluating thread; must be cheap and must not raise.
    span_hook: Optional[Callable[[str, float, Dict[str, Any]], None]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.obs is None:
            # Own registry (per-engine stats isolation), shared process
            # tracer (one ``--trace`` captures every engine's spans).
            root = get_obs()
            self.obs = Obs(
                metrics=MetricsRegistry(),
                tracer=root.tracer,
                exec_trace=root.exec_trace,
            )
        metrics = self.obs.metrics
        self.stats = EngineStats(metrics)
        if self.cache is None:
            self.cache = InProcessCache(self.cache_size)
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        # Resolve hot-path metrics once; updates are attribute bumps.
        self._runs_counter = metrics.counter("engine.runs_evaluated")
        self._reference_counter = metrics.counter("engine.reference_evaluations")
        self._vectorized_counter = metrics.counter("engine.vectorized_evaluations")
        self._meanfield_counter = metrics.counter("engine.meanfield_evaluations")
        self._hit_counter = metrics.counter("engine.cache.hit")
        self._miss_counter = metrics.counter("engine.cache.miss")
        self._batch_counter = metrics.counter("engine.batch_calls")
        self._wall_counter = metrics.counter("engine.wall_time_seconds")
        self._latency_histogram = metrics.histogram("engine.evaluate.latency")
        self._mc_trials_counter = metrics.counter("mc.trials")
        # Scaled (parametric) evaluations return CounterEvaluation, not
        # EventProbabilities, so they cannot share the typed memo cache;
        # they get a small engine-internal FIFO keyed on the packed spec.
        self._scaled_cache: Dict[tuple, "CounterEvaluation"] = {}

    # -- cache ---------------------------------------------------------

    @staticmethod
    def cache_key(
        protocol: Protocol,
        topology: Topology,
        run: Run,
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
    ) -> Optional[tuple]:
        """The memo-cache key for one evaluation, or None if unhashable.

        Public (and static: no engine required) because callers that
        sit *in front of* the engine — the service tier's
        micro-batcher, shard routers, warm-start snapshot import —
        need to know whether two requests would land on the same cache
        line without evaluating anything, sometimes before any engine
        exists in the process.

        The run is keyed in **packed form** — ``(num_rounds, bits)``
        under the topology's :class:`~repro.core.packed.RunLayout` —
        so evaluations arriving as :class:`Run` objects and as
        :class:`~repro.core.packed.PackedRun` masks share cache lines
        (and snapshot entries shrink to two ints per run).  A run that
        does not fit the topology's layout (off-edge message, foreign
        vertex) falls back to keying the run object itself: such runs
        still reach the backend, which rejects or evaluates them with
        reference semantics, and their cache behavior is unchanged.
        """
        try:
            packed_bits = layout_for(topology, run.num_rounds).pack_bits(run)
        except ValueError:
            try:
                return (hash(protocol), protocol, topology, run, method, trials)
            except TypeError:
                return None  # unhashable protocol: skip memoization
        try:
            return (
                hash(protocol),
                protocol,
                topology,
                run.num_rounds,
                packed_bits,
                method,
                trials,
            )
        except TypeError:
            return None  # unhashable protocol: skip memoization

    @staticmethod
    def packed_cache_key(
        protocol: Protocol,
        topology: Topology,
        packed: PackedRun,
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
    ) -> Optional[tuple]:
        """The memo-cache key for a packed run — no ``Run`` needed.

        Produces the same key :meth:`cache_key` would for the unpacked
        run, so the packed search paths and the legacy scalar path hit
        each other's entries.
        """
        try:
            return (
                hash(protocol),
                protocol,
                topology,
                packed.num_rounds,
                packed.bits,
                method,
                trials,
            )
        except TypeError:
            return None  # unhashable protocol: skip memoization

    @staticmethod
    def counter_cache_key(
        protocol: Protocol, spec: "CounterRunSpec"
    ) -> Optional[tuple]:
        """The memo key for one scaled (parametric) evaluation.

        Specs have no topology or ``Run`` — the run is keyed on its
        packed integer form, which encodes classes and deliveries
        completely — so two structurally identical specs share a line
        regardless of how they were built.
        """
        try:
            return (hash(protocol), protocol, "counter-spec", spec.packed())
        except TypeError:
            return None  # unhashable protocol: skip memoization

    @staticmethod
    def batch_key(
        protocol: Protocol,
        topology: Topology,
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
    ) -> Optional[tuple]:
        """The batch-submission key: the run-independent cache-key prefix.

        Two scalar evaluations whose batch keys are equal (and not
        None) may be coalesced into a single :meth:`evaluate_many`
        call without changing any result — they share the protocol,
        topology, method, and trial count, so only their runs differ.
        This is the grouping hook the service micro-batcher uses, and
        (static, so routers need no engine) the key the sharded
        serving tier consistent-hashes to pick the shard whose cache
        owns the group (see :mod:`repro.service.sharding`).
        """
        try:
            return (hash(protocol), protocol, topology, method, trials)
        except TypeError:
            return None  # unhashable protocol: never coalesce

    @contextmanager
    def _evaluating(self) -> Iterator[None]:
        """Mark an evaluation in flight (guards cache maintenance)."""
        with self._inflight_lock:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def _check_not_busy(self, operation: str) -> None:
        with self._inflight_lock:
            inflight = self._inflight
        if inflight:
            raise EngineBusyError(
                f"{operation} with {inflight} evaluation(s) in flight: "
                "the memo cache must not be mutated under a concurrent "
                "reader (see the Engine thread-affinity contract)"
            )

    def _cache_get(self, key: Optional[tuple]) -> Optional[EventProbabilities]:
        if key is None:
            return None
        assert self.cache is not None
        result = self.cache.get(key)
        if result is not None:
            self._hit_counter.value += 1
        else:
            self._miss_counter.value += 1
        return result

    def _cache_put(
        self, key: Optional[tuple], result: EventProbabilities
    ) -> None:
        if key is None or not result.is_exact():
            return
        assert self.cache is not None
        self.cache.put(key, result)

    def clear_cache(self) -> None:
        """Drop the memo cache (raises :class:`EngineBusyError` if
        evaluations are in flight on any thread)."""
        self._check_not_busy("clear_cache()")
        assert self.cache is not None
        self.cache.clear()
        self._scaled_cache.clear()

    def reset(self) -> None:
        """Zero the instrumentation and drop the memo cache.

        Called between experiment runs that share one
        :class:`~repro.experiments.common.Config`, so each report's
        engine note covers exactly one run (and repeated runs replay
        identically — no stale cache hits).  Metrics are zeroed in
        place, so resolved counter references — including this
        engine's :class:`EngineStats` view — stay valid; recorded
        trace spans are left alone (they belong to the session, not
        the engine).  Raises :class:`EngineBusyError` while
        evaluations are in flight, like :meth:`clear_cache`.
        """
        self._check_not_busy("reset()")
        self.obs.metrics.reset()
        assert self.cache is not None
        self.cache.clear()
        self._scaled_cache.clear()
        logger.debug(
            "engine reset: memo cache dropped, metrics zeroed (backend=%s)",
            self.backend,
        )

    @property
    def cache_len(self) -> int:
        """Entry count; safe to read concurrently with evaluations."""
        assert self.cache is not None
        return len(self.cache)

    def export_cache_snapshot(self) -> bytes:
        """Warm-start snapshot of the cache, if it supports one.

        Delegates to :meth:`ShardLocalCache.export_snapshot
        <repro.engine.cache.ShardLocalCache.export_snapshot>`; raises
        ``TypeError`` for cache implementations without snapshots.
        """
        self._check_not_busy("export_cache_snapshot()")
        exporter = getattr(self.cache, "export_snapshot", None)
        if exporter is None:
            raise TypeError(
                f"{type(self.cache).__name__} does not support warm-start "
                "snapshots (use ShardLocalCache)"
            )
        blob: bytes = exporter()
        return blob

    def import_cache_snapshot(self, blob: bytes) -> int:
        """Load a warm-start snapshot; returns entries imported."""
        self._check_not_busy("import_cache_snapshot()")
        importer = getattr(self.cache, "import_snapshot", None)
        if importer is None:
            raise TypeError(
                f"{type(self.cache).__name__} does not support warm-start "
                "snapshots (use ShardLocalCache)"
            )
        imported: int = importer(blob)
        return imported

    # -- backend selection --------------------------------------------

    def supports_vectorized(
        self, protocol: Protocol, topology: Topology
    ) -> bool:
        """Whether the numpy kernel evaluates this pair exactly."""
        from . import vectorized

        return vectorized.supports(protocol, topology)

    def supports_meanfield(
        self, protocol: Protocol, topology: Topology
    ) -> bool:
        """Whether the counter-abstraction kernel evaluates this pair.

        True only on complete graphs for the protocol families with a
        lumped kernel (S, W, M); individual runs must additionally be
        class-uniform, which :func:`repro.meanfield.evaluate_counter`
        checks per call.
        """
        from .. import meanfield

        return meanfield.supports(protocol, topology)

    def _wants_vectorized(
        self,
        protocol: Protocol,
        topology: Topology,
        method: str,
        batch: int,
    ) -> bool:
        if self.backend in ("reference", "meanfield"):
            return False
        if method not in ("auto", "closed-form"):
            return False  # caller demanded enumeration / Monte Carlo
        if not self.supports_vectorized(protocol, topology):
            return False
        if self.backend == "vectorized":
            return True
        return batch >= self.min_vectorized_batch

    def _wants_meanfield(
        self, protocol: Protocol, topology: Topology, method: str
    ) -> bool:
        """Route exact evaluations through the counter abstraction.

        Only under ``backend="meanfield"``, and only for methods the
        lumped kernels answer exactly; a caller explicitly demanding
        enumeration or Monte Carlo keeps reference semantics (mirrors
        the vectorized backend's Monte-Carlo passthrough).  Unsupported
        (protocol, topology) pairs are *not* silently downgraded —
        :func:`repro.meanfield.evaluate_counter` raises a typed error
        naming the obstruction, which is the backend's contract.
        """
        if self.backend != "meanfield":
            return False
        return method in ("auto", "closed-form")

    # -- evaluation ----------------------------------------------------

    def evaluate(
        self,
        protocol: Protocol,
        topology: Topology,
        run: Run,
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
        rng: Optional[random.Random] = None,
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> EventProbabilities:
        """Cached scalar evaluation (reference semantics)."""
        tracer = self.obs.tracer
        if tracer.enabled:
            span = tracer.span(
                "engine.evaluate", protocol=protocol.name, method=method
            )
        else:
            span = tracer.span("engine.evaluate")
        with span, self._evaluating():
            self._runs_counter.value += 1
            key = self.cache_key(protocol, topology, run, method, trials)
            cached = self._cache_get(key)
            if cached is not None:
                return cached
            started = monotonic()
            if self._wants_meanfield(protocol, topology, method):
                from ..meanfield import evaluate_counter

                result = evaluate_counter(protocol, topology, run)
                self._meanfield_counter.value += 1
            elif self._wants_vectorized(protocol, topology, method, batch=1):
                from . import vectorized

                result = vectorized.evaluate_batch(protocol, topology, [run])[0]
                self._vectorized_counter.value += 1
            else:
                result = evaluate(
                    protocol,
                    topology,
                    run,
                    method=method,
                    trials=trials,
                    rng=rng,
                    enumeration_limit=enumeration_limit,
                )
                self._reference_counter.value += 1
            elapsed = monotonic() - started
            self._wall_counter.value += elapsed
            self._latency_histogram.observe(elapsed)
            if self.span_hook is not None:
                self.span_hook(
                    "engine.evaluate",
                    elapsed,
                    {"runs": 1, "cache_hits": 0, "cache_misses": 1},
                )
            if result.method == "monte-carlo" and result.trials:
                self._mc_trials_counter.inc(result.trials)
            self._cache_put(key, result)
            if self.obs.exec_trace and tracer.enabled:
                from ..obs.exec_trace import trace_execution

                trace_execution(protocol, topology, run, tracer)
            return result

    def evaluate_many(
        self,
        protocol: Protocol,
        topology: Topology,
        runs: Sequence[Run],
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
        rng: Optional[random.Random] = None,
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> List[EventProbabilities]:
        """Evaluate a batch of runs, in order, against one protocol.

        Semantically equivalent to mapping :meth:`evaluate` over
        ``runs`` (same results, same rng consumption for Monte-Carlo
        protocols); the vectorized backend and the memo cache only
        change how fast the answers arrive.
        """
        runs = list(runs)
        tracer = self.obs.tracer
        if tracer.enabled:
            span = tracer.span(
                "engine.evaluate_many",
                protocol=protocol.name,
                method=method,
                runs=len(runs),
            )
        else:
            span = tracer.span("engine.evaluate_many")
        with span, self._evaluating():
            self._batch_counter.value += 1
            self._runs_counter.value += len(runs)
            results: List[Optional[EventProbabilities]] = [None] * len(runs)
            keys: List[Optional[tuple]] = [None] * len(runs)
            pending: List[int] = []
            for index, run in enumerate(runs):
                key = self.cache_key(protocol, topology, run, method, trials)
                keys[index] = key
                cached = self._cache_get(key)
                if cached is not None:
                    results[index] = cached
                else:
                    pending.append(index)
            if not pending:
                if self.span_hook is not None:
                    self.span_hook(
                        "engine.evaluate_many",
                        0.0,
                        {
                            "runs": len(runs),
                            "cache_hits": len(runs),
                            "cache_misses": 0,
                        },
                    )
                return [result for result in results if result is not None]
            started = monotonic()
            if self._wants_vectorized(
                protocol, topology, method, batch=len(pending)
            ):
                self._evaluate_pending_vectorized(
                    protocol, topology, runs, results, keys, pending
                )
            else:
                for index in pending:
                    # Re-consult the cache so duplicate runs inside one
                    # batch are evaluated once (exact results only; the
                    # cache never stores Monte-Carlo estimates).
                    assert self.cache is not None
                    cached = (
                        self.cache.get(keys[index])
                        if keys[index] is not None
                        else None
                    )
                    if cached is not None:
                        results[index] = cached
                        continue
                    if self._wants_meanfield(protocol, topology, method):
                        from ..meanfield import evaluate_counter

                        result = evaluate_counter(
                            protocol, topology, runs[index]
                        )
                        self._meanfield_counter.value += 1
                    else:
                        result = evaluate(
                            protocol,
                            topology,
                            runs[index],
                            method=method,
                            trials=trials,
                            rng=rng,
                            enumeration_limit=enumeration_limit,
                        )
                        self._reference_counter.value += 1
                    if result.method == "monte-carlo" and result.trials:
                        self._mc_trials_counter.inc(result.trials)
                    self._cache_put(keys[index], result)
                    results[index] = result
            elapsed = monotonic() - started
            self._wall_counter.value += elapsed
            self._latency_histogram.observe(elapsed)
            if self.span_hook is not None:
                self.span_hook(
                    "engine.evaluate_many",
                    elapsed,
                    {
                        "runs": len(runs),
                        "cache_hits": len(runs) - len(pending),
                        "cache_misses": len(pending),
                    },
                )
            return [result for result in results if result is not None]

    def _evaluate_pending_vectorized(
        self,
        protocol: Protocol,
        topology: Topology,
        runs: Sequence[Run],
        results: List[Optional[EventProbabilities]],
        keys: List[Optional[tuple]],
        pending: List[int],
    ) -> None:
        from . import vectorized

        # Deduplicate within the batch (closed-form results are pure),
        # and group by horizon: the kernel wants uniform num_rounds.
        by_horizon: Dict[Round, Dict[Run, List[int]]] = {}
        for index in pending:
            run = runs[index]
            by_horizon.setdefault(run.num_rounds, {}).setdefault(
                run, []
            ).append(index)
        for unique in by_horizon.values():
            unique_runs = list(unique.keys())
            batch_results = vectorized.evaluate_batch(
                protocol, topology, unique_runs
            )
            self._vectorized_counter.value += len(unique_runs)
            for run, result in zip(unique_runs, batch_results):
                for index in unique[run]:
                    results[index] = result
                    self._cache_put(keys[index], result)

    # -- packed evaluation --------------------------------------------

    def evaluate_packed_many(
        self,
        protocol: Protocol,
        topology: Topology,
        batch: RunBatch,
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
        use_cache: bool = False,
    ) -> List[EventProbabilities]:
        """Evaluate a :class:`RunBatch`, packed end-to-end when possible.

        When the vectorized kernel supports the pair, the batch's words
        feed it directly — no ``Run`` objects exist at any point.
        Otherwise the batch is unpacked and delegated to
        :meth:`evaluate_many` (reference semantics), so the call is
        total either way and results are bit-identical across paths.

        ``use_cache`` defaults to False: the bulk callers (exhaustive
        packed sweeps) visit each run exactly once, so per-run memo
        traffic would only add overhead and evict genuinely reusable
        entries.  Pass True to memoize each result under the same
        packed keys the scalar path uses.
        """
        if len(batch) == 0:
            return []
        if not self._wants_vectorized(
            protocol, topology, method, batch=len(batch)
        ):
            return self.evaluate_many(
                protocol,
                topology,
                batch.to_runs(),
                method=method,
                trials=trials,
            )
        from . import vectorized

        tracer = self.obs.tracer
        if tracer.enabled:
            span = tracer.span(
                "engine.evaluate_packed_many",
                protocol=protocol.name,
                method=method,
                runs=len(batch),
            )
        else:
            span = tracer.span("engine.evaluate_packed_many")
        with span, self._evaluating():
            self._batch_counter.value += 1
            self._runs_counter.value += len(batch)
            started = monotonic()
            results = vectorized.evaluate_packed_batch(
                protocol, topology, batch
            )
            self._vectorized_counter.value += len(batch)
            if use_cache:
                for index, result in enumerate(results):
                    key = self.packed_cache_key(
                        protocol, topology, batch.packed(index), method, trials
                    )
                    self._cache_put(key, result)
            elapsed = monotonic() - started
            self._wall_counter.value += elapsed
            self._latency_histogram.observe(elapsed)
            if self.span_hook is not None:
                self.span_hook(
                    "engine.evaluate_packed_many",
                    elapsed,
                    {
                        "runs": len(batch),
                        "cache_hits": 0,
                        "cache_misses": len(batch),
                    },
                )
            return results

    def supports_incremental(
        self, protocol: Protocol, topology: Topology
    ) -> bool:
        """Whether :meth:`evaluate_neighbors` can serve this pair.

        The incremental kernel is a vectorized-backend feature; under
        ``backend="reference"`` (or ``"meanfield"``) callers should
        evaluate neighbors through :meth:`evaluate_many` instead (same
        results, no prefix-state reuse).
        """
        return self.backend in ("auto", "vectorized") and self.supports_vectorized(
            protocol, topology
        )

    def evaluate_neighbors(
        self,
        protocol: Protocol,
        topology: Topology,
        parent: PackedRun,
        method: str = "auto",
        trials: int = DEFAULT_TRIALS,
    ) -> Tuple[EventProbabilities, List[EventProbabilities]]:
        """A run and all of its single-bit neighbors, incrementally.

        Returns ``(parent_result, by_bit)`` — see
        :func:`repro.engine.vectorized.evaluate_neighbor_batch`; each
        neighbor re-derives its counts from the parent's cached
        per-round state instead of simulating from scratch.  All
        results are exact and are memoized under the packed cache
        keys.  Raises ``ValueError`` when
        :meth:`supports_incremental` is False for the pair.
        """
        if not self.supports_incremental(protocol, topology):
            raise ValueError(
                "incremental neighbor evaluation requires the vectorized "
                f"backend to support protocol {protocol.name!r} on this "
                "topology"
            )
        from . import vectorized

        num_neighbors = parent.layout.num_bits
        tracer = self.obs.tracer
        if tracer.enabled:
            span = tracer.span(
                "engine.evaluate_neighbors",
                protocol=protocol.name,
                neighbors=num_neighbors,
            )
        else:
            span = tracer.span("engine.evaluate_neighbors")
        with span, self._evaluating():
            self._batch_counter.value += 1
            self._runs_counter.value += 1 + num_neighbors
            started = monotonic()
            parent_result, by_bit = vectorized.evaluate_neighbor_batch(
                protocol, topology, parent
            )
            self._vectorized_counter.value += 1 + num_neighbors
            self._cache_put(
                self.packed_cache_key(protocol, topology, parent, method, trials),
                parent_result,
            )
            for bit, result in enumerate(by_bit):
                key = self.packed_cache_key(
                    protocol,
                    topology,
                    parent.with_bit_flipped(bit),
                    method,
                    trials,
                )
                self._cache_put(key, result)
            elapsed = monotonic() - started
            self._wall_counter.value += elapsed
            self._latency_histogram.observe(elapsed)
            if self.span_hook is not None:
                self.span_hook(
                    "engine.evaluate_neighbors",
                    elapsed,
                    {
                        "runs": 1 + num_neighbors,
                        "cache_hits": 0,
                        "cache_misses": 1 + num_neighbors,
                    },
                )
            return parent_result, by_bit

    # -- scaled (parametric) evaluation --------------------------------

    def evaluate_scaled(
        self, protocol: Protocol, spec: "CounterRunSpec"
    ) -> "CounterEvaluation":
        """Evaluate a parametric counter spec — any ``m``, no graph.

        The large-m entry point behind ``repro scale-sweep`` and E17:
        cost is ``O(rounds * classes**2)`` regardless of
        ``spec.num_processes``, and results are memoized in an
        engine-internal FIFO keyed on the packed spec (the typed memo
        cache stores :class:`~repro.core.probability.EventProbabilities`
        only).  Available on every backend — the counter kernel is the
        *only* evaluator that exists at ``m = 10**6``.
        """
        from ..meanfield import evaluate_spec

        tracer = self.obs.tracer
        if tracer.enabled:
            span = tracer.span(
                "engine.evaluate_scaled",
                protocol=protocol.name,
                num_processes=spec.num_processes,
            )
        else:
            span = tracer.span("engine.evaluate_scaled")
        with span, self._evaluating():
            self._runs_counter.value += 1
            key = self.counter_cache_key(protocol, spec)
            if key is not None:
                cached = self._scaled_cache.get(key)
                if cached is not None:
                    self._hit_counter.value += 1
                    return cached
                self._miss_counter.value += 1
            started = monotonic()
            result = evaluate_spec(protocol, spec)
            self._meanfield_counter.value += 1
            elapsed = monotonic() - started
            self._wall_counter.value += elapsed
            self._latency_histogram.observe(elapsed)
            if self.span_hook is not None:
                self.span_hook(
                    "engine.evaluate_scaled",
                    elapsed,
                    {"runs": 1, "cache_hits": 0, "cache_misses": 1},
                )
            if key is not None:
                while len(self._scaled_cache) >= SCALED_CACHE_SIZE:
                    self._scaled_cache.pop(next(iter(self._scaled_cache)))
                self._scaled_cache[key] = result
            return result

    # -- weak-adversary fast paths ------------------------------------

    def pair_weak_estimate_s(
        self,
        num_rounds: Round,
        epsilon: float,
        loss_probability: float,
        samples: int,
        rng,
    ):
        """Vectorized two-general ``E[L]``/``E[U]`` sweep for Protocol S."""
        from . import vectorized

        with self.obs.tracer.span(
            "engine.pair_weak_estimate",
            protocol="S",
            samples=samples,
            num_rounds=num_rounds,
        ):
            started = monotonic()
            try:
                self._runs_counter.inc(samples)
                self._vectorized_counter.inc(samples)
                self._mc_trials_counter.inc(samples)
                return vectorized.pair_protocol_s_weak_estimate(
                    num_rounds, epsilon, loss_probability, samples, rng
                )
            finally:
                elapsed = monotonic() - started
                self._wall_counter.value += elapsed
                self._latency_histogram.observe(elapsed)

    def pair_weak_estimate_w(
        self,
        num_rounds: Round,
        threshold: int,
        loss_probability: float,
        samples: int,
        rng,
    ):
        """Vectorized two-general ``E[L]``/``E[U]`` sweep for Protocol W."""
        from . import vectorized

        with self.obs.tracer.span(
            "engine.pair_weak_estimate",
            protocol="W",
            samples=samples,
            num_rounds=num_rounds,
        ):
            started = monotonic()
            try:
                self._runs_counter.inc(samples)
                self._vectorized_counter.inc(samples)
                self._mc_trials_counter.inc(samples)
                return vectorized.pair_protocol_w_weak_estimate(
                    num_rounds, threshold, loss_probability, samples, rng
                )
            finally:
                elapsed = monotonic() - started
                self._wall_counter.value += elapsed
                self._latency_histogram.observe(elapsed)


_default_engine: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide engine used when callers do not pass their own."""
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine()
    return _default_engine
