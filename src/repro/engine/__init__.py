"""Batched evaluation engine: one front door for ``Pr[X | R]``.

Public surface:

* :class:`Engine` — the facade with pluggable backends (``auto`` /
  ``reference`` / ``vectorized``), a pluggable memo cache over exact
  results, and instrumentation counters (:class:`EngineStats`);
* :mod:`repro.engine.cache` — the :class:`EngineCache` interface with
  the in-process FIFO default (:class:`InProcessCache`) and the
  warm-start snapshot variant serving shards use
  (:class:`ShardLocalCache`);
* :func:`default_engine` — the process-wide engine that
  :func:`repro.core.probability.evaluate_many` delegates to;
* :mod:`repro.engine.vectorized` — the numpy batch kernels, including
  the two-general fast paths that ``analysis.fast_mc`` now wraps.
"""

from .cache import EngineCache, InProcessCache, ShardLocalCache
from .engine import (
    BACKENDS,
    DEFAULT_CACHE_SIZE,
    Engine,
    EngineBusyError,
    EngineStats,
    MIN_VECTORIZED_BATCH,
    default_engine,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_CACHE_SIZE",
    "Engine",
    "EngineBusyError",
    "EngineCache",
    "EngineStats",
    "InProcessCache",
    "MIN_VECTORIZED_BATCH",
    "ShardLocalCache",
    "default_engine",
]
