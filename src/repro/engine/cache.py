"""Pluggable memo caches for the evaluation :class:`~repro.engine.Engine`.

The engine memoizes exact evaluation results keyed on
:meth:`Engine.cache_key <repro.engine.Engine.cache_key>` — the
hashable ``(protocol, topology, run, method, trials)`` tuple.  This
module makes that cache an explicit, swappable component instead of a
private dict inside one engine:

* :class:`EngineCache` — the interface every cache implements
  (``get`` / ``put`` / ``clear`` / ``__len__``).  Implementations must
  treat keys and results as immutable shared values: the engine hands
  the same objects to every caller, and a cache hit replays the stored
  result verbatim.  Rule RC005 of :mod:`repro.staticcheck` enforces
  that contract statically over :data:`CACHE_SURFACE_QUALNAMES`.
* :class:`InProcessCache` — the bounded FIFO dict cache the engine has
  always used, now behind the interface.
* :class:`ShardLocalCache` — an :class:`InProcessCache` that can
  export and import **warm-start snapshots**.  A serving shard drains
  with a hot cache; exporting it and importing it on the next boot
  (or on a replacement shard) skips the cold-start re-evaluation of
  every popular query.  Snapshots store the key *components*, not the
  key tuples: cache keys embed ``hash(protocol)``, which is not stable
  across processes (string field hashing is salted per process), so
  the import path re-derives every key through ``Engine.cache_key`` in
  the importing process.

Thread-affinity: like the engine itself, a cache instance belongs to
one evaluation thread at a time.  The engine serializes its own access
(the service tier runs one engine thread per shard); the cache does
not lock.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..core.probability import EventProbabilities

#: Cache-surface methods RC005 verifies: they may mutate the cache's
#: own state (that is their job) but must not mutate keys or results,
#: touch module globals, or consume RNG/clock — a hit replays the
#: stored value, so anything impure would be silently frozen into it.
CACHE_SURFACE_QUALNAMES: Tuple[str, ...] = (
    "repro.engine.cache.InProcessCache.get",
    "repro.engine.cache.InProcessCache.put",
    "repro.engine.cache.ShardLocalCache.export_snapshot",
    "repro.engine.cache.ShardLocalCache.import_snapshot",
)

#: Snapshot wire-format version; bump when the pickled shape changes.
#: v2: cache keys carry runs in packed form — ``(..., num_rounds,
#: bits, ...)`` instead of an embedded ``Run`` — so v1 snapshots (one
#: component fewer, Run-keyed) are not importable and are skipped.
SNAPSHOT_VERSION = 2


class EngineCache(ABC):
    """The memo-cache interface the engine evaluates against.

    Keys are ``Engine.cache_key`` tuples (never ``None`` — the engine
    skips the cache for unhashable specs before calling in here).
    Values are exact :class:`EventProbabilities` results; the engine
    never asks a cache to store a Monte-Carlo estimate.
    """

    @abstractmethod
    def get(self, key: tuple) -> Optional[EventProbabilities]:
        """The stored result for ``key``, or ``None`` on a miss."""

    @abstractmethod
    def put(self, key: tuple, result: EventProbabilities) -> None:
        """Store one exact result (evicting per policy if full)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry."""

    @abstractmethod
    def __len__(self) -> int:
        """The number of stored entries."""


class InProcessCache(EngineCache):
    """Bounded FIFO dict cache: the engine's historical default.

    ``max_size <= 0`` disables storage entirely (every ``put`` is a
    no-op), matching the old ``Engine(cache_size=0)`` behavior.
    """

    def __init__(self, max_size: int) -> None:
        self.max_size = max_size
        self._data: "OrderedDict[tuple, EventProbabilities]" = OrderedDict()

    def get(self, key: tuple) -> Optional[EventProbabilities]:
        return self._data.get(key)

    def put(self, key: tuple, result: EventProbabilities) -> None:
        if self.max_size <= 0:
            return
        if key not in self._data and len(self._data) >= self.max_size:
            self._data.popitem(last=False)
        self._data[key] = result

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class ShardLocalCache(InProcessCache):
    """An in-process cache with warm-start snapshot export/import.

    The snapshot is a pickled list of ``(components, result)`` pairs
    where ``components`` is everything after the leading
    ``hash(protocol)`` of an ``Engine.cache_key`` tuple — since the
    packed-run refactor that is ``(protocol, topology, num_rounds,
    bits, method, trials)`` with the run as two ints.  Import re-keys
    every entry by re-hashing its protocol in the importing process,
    so snapshots survive per-process hash salting and can warm a
    freshly spawned shard (or the same shard across a restart).
    """

    def export_snapshot(self) -> bytes:
        """Serialize the current entries as a warm-start snapshot.

        Keys are stored as their components (``key[1:]`` — everything
        after the embedded ``hash(protocol)`` prefix), which is what
        makes the snapshot portable across processes.
        """
        entries: List[Tuple[tuple, EventProbabilities]] = [
            (key[1:], result) for key, result in self._data.items()
        ]
        return pickle.dumps((SNAPSHOT_VERSION, entries))

    def import_snapshot(self, blob: bytes) -> int:
        """Load a snapshot produced by :meth:`export_snapshot`.

        Entries are re-keyed by prepending ``hash(components[0])``
        (the protocol hash, salted per process) — shape-generically,
        so the key layout is owned by ``Engine.cache_key`` alone.
        Entries whose protocol no longer hashes, and snapshot versions
        this build does not know, are skipped.  Returns the number of
        entries imported.
        """
        version, entries = pickle.loads(blob)
        if version != SNAPSHOT_VERSION:
            return 0
        imported = 0
        for components, result in entries:
            try:
                key = (hash(components[0]),) + tuple(components)
            except TypeError:
                continue
            self.put(key, result)
            imported += 1
        return imported
