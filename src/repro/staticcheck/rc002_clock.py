"""RC002 clock-discipline: evaluation layers use one monotonic clock.

The repository's second shipped bug was cache hits inflating
wall-time metrics — timing code sprinkled through the evaluation path
measured the wrong thing.  The fix centralized duration measurement on
the monotonic clock the observability layer owns; this rule keeps
``engine/``, ``protocols/``, ``adversary/``, and ``service/`` free of
direct ``time.*`` / ``datetime.*`` calls so every duration and
timestamp flows through :func:`repro.obs.runtime.monotonic` (and stays
immune to wall-clock adjustments, cache hits, and replay).  The
serving tier is in scope because request latencies, batch-wait
deadlines, and drain timeouts are exactly the durations that go wrong
on a wall clock; its one legitimate wall-clock need — stamping
``BENCH_serve.json`` — routes through
:func:`repro.obs.runtime.utc_now_isoformat`.

``repro.obs.audit`` is individually in scope as well: audit records
cross process boundaries, so their span durations must be monotonic
and their wall-clock start stamps must come from the sanctioned
:func:`repro.obs.runtime.utc_now_timestamp` escape hatch — not ad-hoc
``time.time()`` calls scattered through the module.  The rest of
``obs/`` stays exempt: ``obs/runtime.py`` *is* the clock facade.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, register

#: Subpackages of ``repro`` the rule scopes to.
SCOPED_SUBPACKAGES = frozenset({"engine", "protocols", "adversary", "service"})

#: Individually scoped modules outside those subpackages.  The audit
#: module writes cross-process timestamps, so it is held to the
#: ``obs.runtime`` clock facade even though ``obs/`` at large (which
#: contains that facade) cannot be.
SCOPED_MODULES = frozenset({"repro.obs.audit"})


@register
class ClockDiscipline(Rule):
    rule_id = "RC002"
    name = "clock-discipline"
    summary = (
        "no time.*/datetime.* calls in engine/, protocols/, "
        "adversary/, service/; use repro.obs.runtime.monotonic()"
    )

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.subpackage in SCOPED_SUBPACKAGES
            or ctx.module in SCOPED_MODULES
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name is None:
                continue
            if name.startswith("time.") or name.startswith("datetime."):
                yield self.violation(
                    ctx,
                    node,
                    f"direct clock call `{name}(...)` in an evaluation "
                    "layer: route timing through "
                    "repro.obs.runtime.monotonic() so durations stay "
                    "monotonic and cache-hit-free",
                )
