"""RC002 clock-discipline: evaluation layers use one monotonic clock.

The repository's second shipped bug was cache hits inflating
wall-time metrics — timing code sprinkled through the evaluation path
measured the wrong thing.  The fix centralized duration measurement on
the monotonic clock the observability layer owns; this rule keeps
``engine/``, ``protocols/``, ``adversary/``, and ``service/`` free of
direct ``time.*`` / ``datetime.*`` calls so every duration and
timestamp flows through :func:`repro.obs.runtime.monotonic` (and stays
immune to wall-clock adjustments, cache hits, and replay).  The
serving tier is in scope because request latencies, batch-wait
deadlines, and drain timeouts are exactly the durations that go wrong
on a wall clock; its one legitimate wall-clock need — stamping
``BENCH_serve.json`` — routes through
:func:`repro.obs.runtime.utc_now_isoformat`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, register

#: Subpackages of ``repro`` the rule scopes to.
SCOPED_SUBPACKAGES = frozenset({"engine", "protocols", "adversary", "service"})


@register
class ClockDiscipline(Rule):
    rule_id = "RC002"
    name = "clock-discipline"
    summary = (
        "no time.*/datetime.* calls in engine/, protocols/, "
        "adversary/, service/; use repro.obs.runtime.monotonic()"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.subpackage in SCOPED_SUBPACKAGES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name is None:
                continue
            if name.startswith("time.") or name.startswith("datetime."):
                yield self.violation(
                    ctx,
                    node,
                    f"direct clock call `{name}(...)` in an evaluation "
                    "layer: route timing through "
                    "repro.obs.runtime.monotonic() so durations stay "
                    "monotonic and cache-hit-free",
                )
