"""RC004 claim-traceability: theorem tags resolve, experiments declare.

A reproduction is only as credible as the mapping between its code and
the paper's claims.  This rule enforces that mapping in both
directions:

* every ``Theorem`` / ``Thm`` / ``Lemma`` / ``Corollary`` /
  ``Proposition`` tag appearing in a docstring under ``src/repro/``
  must resolve against the registry in
  :mod:`repro.staticcheck.claims` — a tag that resolves nowhere is
  either a typo or an unregistered claim, and both are traceability
  bugs;
* every experiment module (``experiments/e<N>_*.py``) must declare the
  claim(s) it checks with a module-level literal
  ``CLAIMS = ("Theorem 6.7", ...)`` whose entries all resolve.

The registry side of the link (each claim lists the experiments that
declare it) is enforced by ``tests/staticcheck/test_claims.py``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from .base import FileContext, Rule, Violation, register
from .claims import normalize_tag, resolve

_NUMBER = r"[0-9A-Z]+(?:\.[0-9]+)+"
_TAG_RE = re.compile(
    r"\b(?P<kind>Theorems?|Thms?\.?|Lemmas?|Corollar(?:y|ies)|"
    r"Propositions?)\s+"
    rf"(?P<numbers>{_NUMBER}(?:\s*(?:,|/|and|&)\s*{_NUMBER})*)"
)
_NUMBER_RE = re.compile(_NUMBER)
_EXPERIMENT_FILE_RE = re.compile(r"e\d+_\w+\.py$")


def _docstring_nodes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, ast.Constant]]:
    """(owner, docstring-constant) pairs for module/class/function docs."""
    for node in ast.walk(tree):
        if not isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            yield node, body[0].value


def _find_claims_assignment(
    tree: ast.Module,
) -> Tuple[Optional[ast.stmt], Optional[List[object]]]:
    """The module-level ``CLAIMS = (...)`` statement and its values.

    Returns ``(None, None)`` when absent and ``(stmt, None)`` when
    present but not a literal tuple/list of strings.
    """
    for stmt in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == "CLAIMS"):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            return stmt, None
        tags: List[object] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                tags.append(element.value)
            else:
                return stmt, None
        return stmt, tags
    return None, None


@register
class ClaimTraceability(Rule):
    rule_id = "RC004"
    name = "claim-traceability"
    summary = (
        "docstring Theorem/Lemma tags must resolve against the claims "
        "registry; experiment modules must declare CLAIMS = (...)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_repro

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._check_docstring_tags(ctx)
        basename = ctx.logical.rsplit("/", 1)[-1]
        if ctx.logical.startswith(
            "src/repro/experiments/"
        ) and _EXPERIMENT_FILE_RE.fullmatch(basename):
            yield from self._check_experiment_declaration(ctx)

    def _check_docstring_tags(
        self, ctx: FileContext
    ) -> Iterator[Violation]:
        for _, doc in _docstring_nodes(ctx.tree):
            text = doc.value
            assert isinstance(text, str)
            for match in _TAG_RE.finditer(text):
                kind_keyword = match.group("kind")
                line = doc.lineno + text[: match.start()].count("\n")
                for number in _NUMBER_RE.findall(match.group("numbers")):
                    tag = normalize_tag(f"{kind_keyword} {number}")
                    if resolve(tag) is None:
                        yield Violation(
                            path=ctx.path,
                            line=line,
                            column=1,
                            rule=self.rule_id,
                            message=(
                                f"docstring tag {tag!r} does not resolve "
                                "against the claims registry "
                                "(repro.staticcheck.claims); register "
                                "the claim or fix the tag"
                            ),
                        )

    def _check_experiment_declaration(
        self, ctx: FileContext
    ) -> Iterator[Violation]:
        stmt, tags = _find_claims_assignment(ctx.tree)
        if stmt is None:
            yield Violation(
                path=ctx.path,
                line=1,
                column=1,
                rule=self.rule_id,
                message=(
                    "experiment module does not declare the claim(s) it "
                    "checks: add a module-level "
                    'CLAIMS = ("Theorem 6.7", ...) naming registry tags'
                ),
            )
            return
        if tags is None:
            yield self.violation(
                ctx,
                stmt,
                "CLAIMS must be a literal tuple/list of claim-tag "
                "strings (RC004 reads it statically)",
            )
            return
        if not tags:
            yield self.violation(
                ctx,
                stmt,
                "CLAIMS is empty: an experiment must check at least "
                "one registered claim",
            )
            return
        for tag in tags:
            assert isinstance(tag, str)
            if resolve(tag) is None:
                yield self.violation(
                    ctx,
                    stmt,
                    f"CLAIMS entry {tag!r} does not resolve against "
                    "the claims registry (repro.staticcheck.claims)",
                )
