"""The ``repro lint`` subcommand: text and JSON frontends.

Examples::

    python -m repro lint src/ tests/
    python -m repro lint src/repro/engine/ --select RC002,RC005
    python -m repro lint tests/staticcheck/fixtures/rc001_bad.py \
        --format json
    python -m repro lint --list-rules

Exit codes: 0 — clean; 1 — violations found; 2 — usage error
(unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .base import RULES, Violation, all_rule_ids

__all__ = ["add_lint_arguments", "main", "run_lint"]

#: Schema version of the ``--format json`` payload.
JSON_SCHEMA_VERSION = 1


def _parse_rule_list(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    rules = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [rule for rule in rules if rule not in RULES]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; known: "
            f"{', '.join(all_rule_ids())}"
        )
    return rules


def _render_text(
    violations: Sequence[Violation], files_checked: int
) -> str:
    lines = [violation.render() for violation in violations]
    summary = (
        f"{len(violations)} violation(s) in {files_checked} file(s) checked"
        if violations
        else f"ok: {files_checked} file(s) checked, 0 violations"
    )
    lines.append(summary)
    return "\n".join(lines)


def _render_json(
    violations: Sequence[Violation], files_checked: int
) -> str:
    counts: dict = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "violations": [violation.as_dict() for violation in violations],
        "counts": dict(sorted(counts.items())),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _render_rules() -> str:
    width = max(len(rule_id) for rule_id in RULES)
    lines = ["Registered rules:"]
    for rule_id in all_rule_ids():
        rule = RULES[rule_id]
        lines.append(f"  {rule_id:<{width}}  {rule.name}: {rule.summary}")
    lines.append(
        "\nSuppress per line with `# repro: noqa[RULE] justification`."
    )
    return "\n".join(lines)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to a parser (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint with parsed arguments; returns the exit code."""
    from .checker import check_paths

    if args.list_rules:
        print(_render_rules())
        return 0
    try:
        select = _parse_rule_list(args.select)
        ignore = _parse_rule_list(args.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        violations, files_checked = check_paths(
            args.paths, select=select, ignore=ignore
        )
    except FileNotFoundError as error:
        print(f"error: no such path: {error.args[0]}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(_render_json(violations, files_checked))
    else:
        print(_render_text(violations, files_checked))
    return 1 if violations else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
