"""The ``repro lint`` subcommand: text, JSON, and SARIF frontends.

Examples::

    python -m repro lint src/ tests/
    python -m repro lint src/repro/engine/ --select RC002,RC005
    python -m repro lint tests/staticcheck/fixtures/rc001_bad.py \
        --format json
    python -m repro lint src/ tests/ --changed   # git-diff scoped
    python -m repro lint src/ --format sarif > lint.sarif
    python -m repro lint --list-rules

``--changed`` restricts *reporting* to files the git working tree has
touched relative to ``HEAD`` (staged, unstaged, and untracked) — the
whole repo is still indexed, because the project-wide rules
(RC006–RC008) need the full call graph, but the expensive per-file
phase is served from the content-hash index cache (``--cache``,
default ``.repro-lint-cache.json`` when ``--changed`` is on) so the
incremental run touches only edited files.

Exit codes: 0 — clean; 1 — violations found; 2 — usage error
(unknown rule id, missing path, not a git checkout with ``--changed``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Sequence, Set

from .base import RULES, Violation, all_rule_ids

__all__ = ["add_lint_arguments", "main", "run_lint"]

#: Schema version of the ``--format json`` payload.
JSON_SCHEMA_VERSION = 1

#: Default on-disk index cache, used when ``--changed`` is given
#: without an explicit ``--cache``.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

#: The SARIF version the ``--format sarif`` payload conforms to.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _parse_rule_list(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    rules = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [rule for rule in rules if rule not in RULES]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; known: "
            f"{', '.join(all_rule_ids())}"
        )
    return rules


def _render_text(
    violations: Sequence[Violation], files_checked: int
) -> str:
    lines = [violation.render() for violation in violations]
    summary = (
        f"{len(violations)} violation(s) in {files_checked} file(s) checked"
        if violations
        else f"ok: {files_checked} file(s) checked, 0 violations"
    )
    lines.append(summary)
    return "\n".join(lines)


def _render_json(
    violations: Sequence[Violation], files_checked: int
) -> str:
    counts: dict = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "violations": [violation.as_dict() for violation in violations],
        "counts": dict(sorted(counts.items())),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _render_sarif(
    violations: Sequence[Violation], files_checked: int
) -> str:
    """A minimal SARIF 2.1.0 log: one run, the full rule catalog,
    one ``result`` per violation (uris are repo-relative with ``/``
    separators, as SARIF artifact locations require)."""
    results = [
        {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace(os.sep, "/"),
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            {
                                "id": rule_id,
                                "name": RULES[rule_id].name,
                                "shortDescription": {
                                    "text": RULES[rule_id].summary
                                },
                            }
                            for rule_id in all_rule_ids()
                        ],
                    }
                },
                "properties": {"files_checked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


def _git_changed_files() -> Set[str]:
    """Python files the working tree has touched relative to ``HEAD``.

    Staged and unstaged edits (``git diff --name-only HEAD``) plus
    untracked files (``git ls-files --others --exclude-standard``) —
    the set a pre-push ``make lint-fast`` wants to re-report.  Raises
    ``RuntimeError`` outside a git checkout.
    """
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: Set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as error:
            raise RuntimeError(
                "--changed needs a git checkout "
                f"({' '.join(command)} failed)"
            ) from error
        names.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return names


def _render_rules() -> str:
    width = max(len(rule_id) for rule_id in RULES)
    lines = ["Registered rules:"]
    for rule_id in all_rule_ids():
        rule = RULES[rule_id]
        lines.append(f"  {rule_id:<{width}}  {rule.name}: {rule.summary}")
    lines.append(
        "\nSuppress per line with `# repro: noqa[RULE] justification`."
    )
    return "\n".join(lines)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to a parser (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report only files changed vs HEAD (staged, unstaged, "
            "untracked); the full repo is still indexed for the "
            "project-wide rules"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help=(
            "content-hash index cache file (default: "
            f"{DEFAULT_CACHE_PATH} when --changed is on, else none)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint with parsed arguments; returns the exit code."""
    from .checker import check_paths

    if args.list_rules:
        print(_render_rules())
        return 0
    try:
        select = _parse_rule_list(args.select)
        ignore = _parse_rule_list(args.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    changed_only: Optional[Set[str]] = None
    if getattr(args, "changed", False):
        try:
            changed_only = _git_changed_files()
        except RuntimeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    cache_path = getattr(args, "cache", None)
    if cache_path is None and changed_only is not None:
        cache_path = DEFAULT_CACHE_PATH
    try:
        violations, files_checked = check_paths(
            args.paths,
            select=select,
            ignore=ignore,
            cache_path=cache_path,
            changed_only=changed_only,
        )
    except FileNotFoundError as error:
        print(f"error: no such path: {error.args[0]}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(_render_json(violations, files_checked))
    elif args.output_format == "sarif":
        print(_render_sarif(violations, files_checked))
    else:
        print(_render_text(violations, files_checked))
    return 1 if violations else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
