"""RC007 — spawn-safety: everything crossing a spawn boundary must pickle.

The shard manager and the worker pool both use the ``spawn`` start
method on purpose (DESIGN.md §10–11): children re-import the world and
share nothing.  That only works when everything handed across the
boundary is picklable *by construction* — a module-level function and
plain-data arguments.  A lambda, a closure (any ``<locals>`` function),
or a bound method of a stateful object either fails to pickle outright
or, worse, drags an unpicklable object graph along.

The rule checks every spawn dispatch site in ``src/repro/``:

* the ``target=`` / submitted callable must not be a lambda, a nested
  function, or a bound method;
* the payload arguments must not contain lambdas or nested functions;
* module-level mutable state touched by both a spawn-context function
  and the dispatching side of the same module is flagged — the child's
  re-imported copy silently diverges from the parent's.

``functools.partial`` is unwrapped: ``partial(module_fn, x)`` is fine,
``partial(lambda: ..., x)`` is not.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from .base import ProjectRule, Violation, register
from .graph import CONTEXT_SPAWN, ProjectContext, _short
from .index import Dispatch, FunctionInfo, ModuleIndex

__all__ = ["SpawnSafety"]

_SCOPE_PREFIX = "src/repro/"

_TARGET_PROBLEMS = {
    "lambda": "a lambda",
    "nested": "a nested function (closure)",
    "self_method": "a bound method of the dispatching object",
    "attr_method": "a bound method of a stateful object",
    "bound": "a bound method of a stateful object",
}

_ARG_PROBLEMS = {
    "lambda": "a lambda",
    "nested": "a nested function (closure)",
}


@register
class SpawnSafety(ProjectRule):
    rule_id = "RC007"
    name = "spawn-safety"
    summary = (
        "callables and arguments crossing spawn Process/pool boundaries "
        "must be picklable by construction: module-level functions and "
        "plain data, no lambdas, closures, or bound methods; module "
        "state must not be shared across the boundary"
    )

    def check_project(self, project: object) -> Iterator[Violation]:
        assert isinstance(project, ProjectContext)
        graph = project.graph
        for fq in sorted(graph.functions):
            node = graph.functions[fq]
            module = node.module
            if not module.logical.startswith(_SCOPE_PREFIX):
                continue
            for dispatch in node.info.dispatches:
                if dispatch.boundary != "spawn":
                    continue
                yield from self._check_dispatch(module, fq, dispatch)
        yield from self._check_module_state(project)

    def _check_dispatch(
        self, module: ModuleIndex, fq: str, dispatch: Dispatch
    ) -> Iterator[Violation]:
        target = dispatch.target
        problem = _TARGET_PROBLEMS.get(target.form)
        if problem is not None:
            wrapped = "functools.partial of " if target.partial else ""
            yield self.project_violation(
                path=module.path,
                line=target.line or dispatch.line,
                column=(target.col or dispatch.col) + 1,
                message=(
                    f"spawn target of {dispatch.via} in {_short(fq)} is "
                    f"{wrapped}{problem}; spawn children can only receive "
                    "module-level functions (pickled by qualified name)"
                ),
            )
        for ref in dispatch.arg_refs:
            arg_problem = _ARG_PROBLEMS.get(ref.form)
            if arg_problem is not None:
                yield self.project_violation(
                    path=module.path,
                    line=ref.line or dispatch.line,
                    column=(ref.col or dispatch.col) + 1,
                    message=(
                        f"argument crossing the spawn boundary at "
                        f"{dispatch.via} in {_short(fq)} is {arg_problem}; "
                        "pass plain picklable data instead"
                    ),
                )

    def _check_module_state(
        self, project: ProjectContext
    ) -> Iterator[Violation]:
        graph = project.graph
        for module_key in sorted(project.index.modules):
            module = project.index.modules[module_key]
            if not module.logical.startswith(_SCOPE_PREFIX):
                continue
            # Functions of this module, split by side of the boundary.
            spawn_side: Dict[str, List[str]] = {}
            parent_side: Dict[str, List[str]] = {}
            has_spawn_dispatch = False
            for qual, info in module.functions.items():
                fn_fq = f"{module.module}.{qual}"
                fn_node = graph.functions.get(fn_fq)
                contexts: Set[str] = (
                    fn_node.contexts if fn_node is not None else set()
                )
                touched = self._touched_state(info)
                dispatches_spawn = any(
                    d.boundary == "spawn" for d in info.dispatches
                )
                has_spawn_dispatch = has_spawn_dispatch or dispatches_spawn
                for name in touched:
                    if CONTEXT_SPAWN in contexts:
                        spawn_side.setdefault(name, []).append(qual)
                    if dispatches_spawn or (contexts - {CONTEXT_SPAWN}):
                        parent_side.setdefault(name, []).append(qual)
            if not has_spawn_dispatch:
                continue
            for name in sorted(spawn_side):
                if name not in parent_side:
                    continue
                state = module.state.get(name)
                if state is None or state.synchronized:
                    continue
                line = state.line
                spawn_fns = ", ".join(sorted(set(spawn_side[name])))
                parent_fns = ", ".join(sorted(set(parent_side[name])))
                yield self.project_violation(
                    path=module.path,
                    line=line,
                    column=1,
                    message=(
                        f"module-level mutable state {name!r} is touched on "
                        f"both sides of a spawn boundary (parent: "
                        f"{parent_fns}; child: {spawn_fns}); spawn children "
                        "re-import the module, so the copies silently "
                        "diverge — pass the data through the payload instead"
                    ),
                )

    @staticmethod
    def _touched_state(info: FunctionInfo) -> Set[str]:
        touched = set(info.state_reads)
        touched.update(name for name, _ in info.state_writes)
        return touched
