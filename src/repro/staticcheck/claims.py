"""The machine-readable registry of the paper's claims.

Every numbered statement of Varghese & Lynch (PODC 1992) that this
reproduction touches — plus the section-level and footnote claims the
unnumbered experiments check — lives here as a :class:`Claim`.  Rule
RC004 resolves the tags that appear in docstrings against this
registry, and every experiment module declares which claims it checks
with a module-level ``CLAIMS`` tuple of these tags; the test suite
asserts the two directions agree (``tests/staticcheck/test_claims.py``).

Tags are canonical strings such as ``"Theorem 6.7"``; shorthand forms
found in prose (``"Thm 6.8"``, ``"Theorems 6.7/6.8"``) normalize onto
them via :func:`normalize_tag`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CLAIMS",
    "Claim",
    "claims_for_experiment",
    "normalize_tag",
    "resolve",
]

#: ``kind`` values a claim may carry.
CLAIM_KINDS = (
    "theorem",
    "lemma",
    "section",
    "footnote",
    "background",
    "substitution",
)


@dataclass(frozen=True)
class Claim:
    """One checkable claim of (or about) the source paper.

    ``tag`` is the canonical registry key; ``source`` locates the claim
    in the paper (or in DESIGN.md for substitutions); ``experiments``
    names every experiment module that declares it in ``CLAIMS``.
    """

    tag: str
    kind: str
    statement: str
    source: str
    experiments: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in CLAIM_KINDS:
            raise ValueError(f"unknown claim kind {self.kind!r}")


def _claim(
    tag: str,
    kind: str,
    statement: str,
    source: str,
    experiments: Tuple[str, ...],
) -> Tuple[str, Claim]:
    return tag, Claim(tag, kind, statement, source, experiments)


CLAIMS: Dict[str, Claim] = dict(
    [
        _claim(
            "Lemma 4.2",
            "lemma",
            "A process's view of a run is exactly its clipped run: "
            "Clip_i(R) determines everything process i can know.",
            "Section 4",
            ("E5", "E14"),
        ),
        _claim(
            "Lemma 6.1",
            "lemma",
            "The Figure 1 count is monotone: count_i never decreases "
            "from round to round.",
            "Section 6",
            ("E5",),
        ),
        _claim(
            "Lemma 6.2",
            "lemma",
            "Counts advance at most one per round, so count spreads "
            "grow by at most one message loss.",
            "Section 6",
            ("E5",),
        ),
        _claim(
            "Lemma 6.3",
            "lemma",
            "Level and modified level differ by at most one: "
            "ML_i(R) <= L_i(R) <= ML_i(R) + 1.",
            "Section 6",
            ("E5",),
        ),
        _claim(
            "Lemma 6.4",
            "lemma",
            "Protocol S's count equals the modified level: "
            "count_i^r = ML_i^r(R) in every run and round.",
            "Section 6",
            ("E4", "E5", "E12"),
        ),
        _claim(
            "Theorem 5.4",
            "theorem",
            "First lower bound: for every validity-satisfying protocol "
            "F and run R, L(F, R) <= U_s(F) * L(R).",
            "Section 5",
            ("E2", "E14"),
        ),
        _claim(
            "Theorem 6.5",
            "theorem",
            "Protocol S satisfies validity: on input-free runs no "
            "process attacks.",
            "Section 6",
            ("E13",),
        ),
        _claim(
            "Theorem 6.7",
            "theorem",
            "Protocol S satisfies agreement with U_s(S) <= epsilon on "
            "every graph and run.",
            "Section 6",
            ("E3", "E7", "E12", "E13", "E15", "E17"),
        ),
        _claim(
            "Theorem 6.8",
            "theorem",
            "Protocol S's liveness is L(S, R) >= min(1, epsilon * "
            "ML(R)) (equality, by uniformity of rfire).",
            "Section 6",
            ("E4", "E7", "E12", "E15", "E17"),
        ),
        _claim(
            "Theorem A.1",
            "theorem",
            "Second lower bound: under the usual-case assumption no "
            "protocol beats epsilon * ML(R) on all runs; Protocol S "
            "is optimal.",
            "Appendix",
            ("E6",),
        ),
        _claim(
            "Lemma A.2",
            "lemma",
            "Causally independent process sets decide independently: "
            "the joint attack probability factors.",
            "Appendix",
            ("E9",),
        ),
        _claim(
            "Lemma A.3",
            "lemma",
            "Independence propagates along the flows-to relation: "
            "decisions correlate only through information flow.",
            "Appendix",
            ("E9",),
        ),
        _claim(
            "Lemma A.6",
            "lemma",
            "The spanning-tree run realizes the level ceiling used by "
            "the second lower bound.",
            "Appendix",
            ("E6",),
        ),
        _claim(
            "Section 3",
            "section",
            "Protocol A: U_s(A) = 1/(N-1) with L = 1 on the good run "
            "and L = 0 once a single packet is lost.",
            "Section 3",
            ("E1",),
        ),
        _claim(
            "Section 8",
            "section",
            "Consequences: liveness 1 with error <= 0.001 needs ~1000 "
            "rounds; the results extend to asynchronous models and "
            "much better tradeoffs exist against weak adversaries.",
            "Section 8",
            ("E7", "E8", "E12"),
        ),
        _claim(
            "Footnote 1",
            "footnote",
            "The results can be modified to fit the message-delivery "
            "validity condition (no messages delivered => no attack).",
            "Footnote 1",
            ("E13",),
        ),
        _claim(
            "Footnote 3",
            "footnote",
            "The strong adversary destroys messages but cannot read "
            "message bits; randomization only helps against coin-blind "
            "adversaries.",
            "Footnote 3",
            ("E11",),
        ),
        _claim(
            "Impossibility [G]",
            "background",
            "No deterministic protocol satisfies validity, agreement, "
            "and nontriviality against the strong adversary ([G], "
            "[HM]).",
            "Section 1 (citations [G], [HM])",
            ("E10",),
        ),
        _claim(
            "Knowledge [HM]",
            "background",
            "The level measure is iterated everyone-knowledge of the "
            "input fact; common knowledge is unattainable ([HM]).",
            "Section 4 (citation [HM])",
            ("E14",),
        ),
        _claim(
            "Substitution: worst-run search",
            "substitution",
            "The reproduction's structured-family worst-run search "
            "finds the exact analytic maximum wherever exhaustive "
            "enumeration is feasible.",
            "DESIGN.md section 3",
            ("E16",),
        ),
        _claim(
            "Substitution: counter abstraction",
            "substitution",
            "The counter-abstraction (meanfield) backend is exact on "
            "complete graphs: bit-for-bit identical to the reference "
            "backend wherever both run, extending the paper's measures "
            "to m = 10**6 processes.",
            "DESIGN.md section 15",
            ("E17",),
        ),
    ]
)

#: Shorthand keyword forms that normalize onto canonical kinds.
_KIND_ALIASES = {
    "thm": "Theorem",
    "thms": "Theorem",
    "theorem": "Theorem",
    "theorems": "Theorem",
    "lemma": "Lemma",
    "lemmas": "Lemma",
    "corollary": "Corollary",
    "corollaries": "Corollary",
    "proposition": "Proposition",
    "propositions": "Proposition",
    "claim": "Claim",
    "claims": "Claim",
}


def normalize_tag(tag: str) -> str:
    """Canonicalize a textual tag: ``"Thm 6.8"`` -> ``"Theorem 6.8"``."""
    parts = tag.split()
    if len(parts) != 2:
        return tag.strip()
    keyword = _KIND_ALIASES.get(parts[0].rstrip(".").lower())
    if keyword is None:
        return tag.strip()
    return f"{keyword} {parts[1]}"


def resolve(tag: str) -> Optional[Claim]:
    """Look a (possibly shorthand) tag up in the registry."""
    return CLAIMS.get(normalize_tag(tag))


def claims_for_experiment(experiment_id: str) -> List[Claim]:
    """Every registered claim that names this experiment id."""
    key = experiment_id.upper()
    return [
        claim for claim in CLAIMS.values() if key in claim.experiments
    ]
