"""Shared analyzer infrastructure: violations, file contexts, rules.

Everything here is stdlib-only and purely syntactic — the analyzer
parses files with :mod:`ast` and never imports the code under check
(the one exception is rule RC005 reading the cacheable-function
registry out of :mod:`repro.engine.engine`, which is part of this
package's own distribution).

A :class:`FileContext` carries the *logical* path of a file — its
repo-relative position such as ``src/repro/engine/engine.py`` — which
is what the rules scope on.  Fixture files (which live under
``tests/staticcheck/fixtures/`` but must exercise rules scoped to real
packages) override their logical path with a leading
``# repro: path=src/repro/...`` comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "FileContext",
    "ImportMap",
    "ProjectRule",
    "RULES",
    "Rule",
    "Violation",
    "all_rule_ids",
    "register",
]


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule fired at a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }


class ImportMap:
    """Resolves local names to the dotted paths they were imported from.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import
    Random as R`` maps ``R -> random.Random``.  Relative imports are
    resolved against the context's own module when known, so ``from
    ..core.seeding import spawn_random`` inside ``repro.engine.engine``
    maps ``spawn_random -> repro.core.seeding.spawn_random``.
    """

    def __init__(
        self,
        tree: ast.Module,
        module: Optional[str] = None,
        is_package: bool = False,
    ) -> None:
        self.aliases: Dict[str, str] = {}
        base_parts: List[str] = []
        if module is not None:
            parts = module.split(".")
            # The package a relative import is resolved against: the
            # module itself for ``__init__`` files, its parent otherwise.
            base_parts = parts if is_package else parts[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom):
                prefix = self._from_prefix(node, base_parts)
                if prefix is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{prefix}.{alias.name}"

    @staticmethod
    def _from_prefix(
        node: ast.ImportFrom, base_parts: List[str]
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        if not base_parts or node.level - 1 > len(base_parts):
            return None  # relative import without a known anchor
        anchor = base_parts[: len(base_parts) - (node.level - 1)]
        parts = list(anchor)
        if node.module:
            parts.extend(node.module.split("."))
        return ".".join(parts) if parts else None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted import path a ``Name``/``Attribute`` chain denotes.

        Returns ``None`` when the chain is not rooted in an imported
        name (e.g. a local variable's method).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: str  # path as reported in violations (what the user passed)
    logical: str  # repo-logical posix path, e.g. "src/repro/engine/engine.py"
    source: str
    tree: ast.Module
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree, self.module, self.is_package)

    @property
    def in_repro(self) -> bool:
        return self.logical.startswith("src/repro/")

    @property
    def is_package(self) -> bool:
        return self.logical.endswith("/__init__.py")

    @property
    def module(self) -> Optional[str]:
        """Dotted module path for files under ``src/repro``, else None."""
        if not self.in_repro or not self.logical.endswith(".py"):
            return None
        rel = self.logical[len("src/") : -len(".py")]
        parts = rel.split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    @property
    def subpackage(self) -> Optional[str]:
        """First package under ``repro`` ("engine", "core", ...).

        The empty string for root modules like ``src/repro/cli.py``;
        ``None`` outside the package entirely.
        """
        if not self.in_repro:
            return None
        parts = self.logical.split("/")
        # parts = ["src", "repro", ...]; a subpackage needs a directory
        # between "repro" and the file name.
        return parts[2] if len(parts) >= 4 else ""


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` implements the path scoping so ``check`` can assume
    it only sees in-scope files.

    Per-file rules see one :class:`FileContext` at a time.  *Project*
    rules (``project = True``, see :class:`ProjectRule`) instead
    implement :meth:`check_project` over the phase-1 repo index and the
    phase-2 call graph, and run once per analysis, after every file has
    been parsed.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    project: bool = False

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def check_project(self, project: object) -> Iterator[Violation]:
        """Graph-aware pass; ``project`` is a ProjectContext."""
        return iter(())

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for graph-aware rules (RC006–RC008).

    These run after phase 1 has indexed every file in the run; the
    checker hands them a ``ProjectContext`` (repo index + call graph)
    and merges their violations into the per-file streams so the noqa
    machinery treats them exactly like syntactic findings.
    """

    project = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())  # all work happens in check_project

    def project_violation(
        self, path: str, line: int, column: int, message: str
    ) -> Violation:
        return Violation(
            path=path,
            line=line,
            column=max(column, 1),
            rule=self.rule_id,
            message=message,
        )


#: All registered rules, keyed by rule id.  RC000 (suppression hygiene)
#: and RC999 (parse errors) are emitted by the checker itself but are
#: listed here so ``--select`` / ``--ignore`` and ``--list-rules`` see
#: them.
RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate the rule and add it to ``RULES``."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if instance.rule_id in RULES:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    RULES[instance.rule_id] = instance
    return cls


class _SuppressionHygiene(Rule):
    """RC000 — emitted by the checker for noqa comments that are bare,
    unknown, unjustified, or unused.  Registered so it can be selected
    and documented like any other rule."""

    rule_id = "RC000"
    name = "suppression-hygiene"
    summary = (
        "`# repro: noqa[RULE]` comments must name known rules, carry a "
        "justification, and actually suppress something"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())  # the checker emits RC000 directly


class _ParseError(Rule):
    """RC999 — the file failed to parse; nothing else was checked."""

    rule_id = "RC999"
    name = "parse-error"
    summary = "the file is not valid Python; no other rule ran"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


register(_SuppressionHygiene)
register(_ParseError)


def all_rule_ids() -> Tuple[str, ...]:
    return tuple(sorted(RULES))
