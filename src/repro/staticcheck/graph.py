"""Phase 2 of the project-wide analyzer: the interprocedural call graph.

Built from the serializable :class:`~repro.staticcheck.index.RepoIndex`,
this module resolves the normalized call sites of every function
against the whole-repo symbol table and derives the two facts the
concurrency rules run on:

* **execution contexts** — which of ``event_loop`` / ``thread`` /
  ``spawn`` a function can run under.  ``async def`` seeds
  ``event_loop``; dispatch sites (``run_in_executor``, executor
  ``submit``, ``Thread``/``Process`` targets, loop callbacks) seed
  their targets; contexts then propagate along *direct* call edges
  only — a dispatch is precisely the point where the context changes,
  so it never propagates the caller's context;
* **blocking reachability** — a function is blocking if it directly
  calls a blocking primitive (``time.sleep``, sync file/socket I/O,
  ``subprocess``, direct ``Engine.evaluate*``) or directly calls a
  blocking repo function.  Dispatching blocking work to an executor is
  the sanctioned escape hatch and does not propagate.

Resolution is best-effort and conservative: ``self.m()`` resolves
through the class hierarchy including subclass overrides, ``self.attr.m()``
through inferred attribute types, and anything unresolvable is kept as
an external call so method-name heuristics (pathlib I/O, engine
evaluation) still apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .index import CallSite, ClassInfo, FuncRef, FunctionInfo, ModuleIndex, RepoIndex

__all__ = [
    "BlockCause",
    "CallGraph",
    "ClassNode",
    "FunctionNode",
    "ProjectContext",
    "SPAWN_DISPATCH_QUALNAMES",
    "CONTEXT_EVENT_LOOP",
    "CONTEXT_SPAWN",
    "CONTEXT_THREAD",
]

CONTEXT_EVENT_LOOP = "event_loop"
CONTEXT_THREAD = "thread"
CONTEXT_SPAWN = "spawn"

_BOUNDARY_CONTEXT = {
    "thread": CONTEXT_THREAD,
    "spawn": CONTEXT_SPAWN,
    "loop": CONTEXT_EVENT_LOOP,
}

#: Repo surfaces that forward their first function argument into a
#: spawn-context pool.  ``WorkerPool.run`` receives the callable as a
#: parameter, so the ``run_in_executor`` inside it cannot be resolved
#: statically — the boundary is declared here instead.
SPAWN_DISPATCH_QUALNAMES = frozenset(
    {
        "repro.service.workers.WorkerPool.run",
    }
)

#: External dotted calls that block the calling thread.
BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.rmdir",
        "os.makedirs",
        "os.mkdir",
        "os.fsync",
        "os.fdatasync",
        "os.open",
        "os.sendfile",
        "pickle.dump",
        "pickle.load",
        "json.dump",
        "json.load",
    }
)

BLOCKING_PREFIXES = ("subprocess.", "socket.", "shutil.", "urllib.")

#: Unresolved bare names that are blocking builtins.
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Method names that are file I/O wherever they appear in this repo
#: (pathlib surfaces); receiver types are often unresolvable, so the
#: name itself is the signal.
BLOCKING_METHOD_NAMES = frozenset(
    {"read_bytes", "write_bytes", "read_text", "write_text", "mkdir"}
)

#: Direct engine evaluation: blocking by definition (that is what the
#: micro-batcher's single-thread executor exists for).
ENGINE_METHOD_NAMES = frozenset({"evaluate", "evaluate_many"})
ENGINE_RECEIVER_NAMES = frozenset({"engine", "_engine"})


@dataclass
class FunctionNode:
    """One function in the project graph."""

    fq: str  # "<module>.<qual>"
    module: ModuleIndex
    info: FunctionInfo
    contexts: Set[str] = field(default_factory=set)
    edges: List[Tuple[CallSite, str]] = field(default_factory=list)
    external: List[Tuple[CallSite, str]] = field(default_factory=list)


@dataclass
class ClassNode:
    fq: str
    module: ModuleIndex
    info: ClassInfo
    bases: List[str] = field(default_factory=list)  # resolved class fqs
    subclasses: List[str] = field(default_factory=list)


@dataclass
class BlockCause:
    """Why a function is considered blocking."""

    site: CallSite
    reason: str  # the blocking primitive, for direct causes
    via: Optional[str] = None  # callee fq, for transitive causes

    def render(self, graph: "CallGraph", depth: int = 4) -> str:
        """Human-readable chain ending at the root primitive."""
        if self.via is None:
            return self.reason
        chain = [self.via]
        cause = graph.blocking.get(self.via)
        while cause is not None and cause.via is not None and depth > 0:
            chain.append(cause.via)
            cause = graph.blocking.get(cause.via)
            depth -= 1
        root = cause.reason if cause is not None else "a blocking call"
        hops = " -> ".join(_short(fq) for fq in chain)
        return f"calls {hops}, which blocks on {root}"


def _short(fq: str) -> str:
    parts = fq.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else fq


class CallGraph:
    """Whole-repo resolution, contexts, and blocking reachability."""

    def __init__(self, index: RepoIndex) -> None:
        self.index = index
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        self._build_tables()
        self._resolve_calls()
        self._classify_contexts()
        self.blocking: Dict[str, BlockCause] = {}
        self._compute_blocking()

    # -- tables ---------------------------------------------------------

    def _build_tables(self) -> None:
        for module in self.index.modules.values():
            for qual, info in module.functions.items():
                fq = f"{module.module}.{qual}"
                self.functions[fq] = FunctionNode(fq=fq, module=module, info=info)
            for name, cls in module.classes.items():
                fq = f"{module.module}.{name}"
                self.classes[fq] = ClassNode(fq=fq, module=module, info=cls)
        for node in self.classes.values():
            for base in node.info.bases:
                if base in self.classes:
                    node.bases.append(base)
                    self.classes[base].subclasses.append(node.fq)

    def _ancestors(self, class_fq: str) -> List[str]:
        seen: List[str] = []
        stack = [class_fq]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.append(current)
            node = self.classes.get(current)
            if node is not None:
                stack.extend(node.bases)
        return seen

    def _descendants(self, class_fq: str) -> List[str]:
        seen: List[str] = []
        node = self.classes.get(class_fq)
        stack = list(node.subclasses) if node is not None else []
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.append(current)
            child = self.classes.get(current)
            if child is not None:
                stack.extend(child.subclasses)
        return seen

    def attr_type(self, class_fq: str, attr: str) -> Optional[str]:
        """Inferred type of ``self.<attr>`` seen from ``class_fq``."""
        for candidate in self._ancestors(class_fq):
            node = self.classes.get(candidate)
            if node is not None and attr in node.info.attr_types:
                return node.info.attr_types[attr]
        return None

    def find_method(self, class_fq: str, name: str) -> List[str]:
        """Defining fqs for a method: inherited definition + overrides."""
        results: List[str] = []
        for candidate in self._ancestors(class_fq):
            node = self.classes.get(candidate)
            if node is not None and name in node.info.methods:
                results.append(f"{candidate}.{name}")
                break
        for candidate in self._descendants(class_fq):
            node = self.classes.get(candidate)
            if node is not None and name in node.info.methods:
                fq = f"{candidate}.{name}"
                if fq not in results:
                    results.append(fq)
        return results

    def _class_of(self, node: FunctionNode) -> Optional[str]:
        if not node.info.class_name:
            return None
        return f"{node.module.module}.{node.info.class_name}"

    # -- call resolution ------------------------------------------------

    def _resolve_dotted(self, name: str) -> List[str]:
        """Repo functions a dotted path denotes (function, class init,
        or Class.method); empty when the path is external."""
        if name in self.functions:
            return [name]
        if name in self.classes:
            init = self.find_method(name, "__init__")
            return init if init else [f"{name}.__init__"]
        # module.Class.method written through an imported class
        head, _, tail = name.rpartition(".")
        if head in self.classes:
            return self.find_method(head, tail)
        return []

    def resolve_site(
        self, node: FunctionNode, call: CallSite
    ) -> Tuple[List[str], Optional[str]]:
        """(internal targets, external dotted name) for one call site."""
        module = node.module
        if call.form == "dotted":
            internal = self._resolve_dotted(call.name)
            if internal:
                return [fq for fq in internal if fq in self.functions], None
            return [], call.name
        if call.form == "local":
            fq = f"{module.module}.{call.name}"
            if fq in self.functions:
                return [fq], None
            if fq in self.classes:
                return (
                    [t for t in self.find_method(fq, "__init__")],
                    None,
                )
            return [], call.name  # builtin or star import
        if call.form == "self_method":
            class_fq = self._class_of(node)
            if class_fq is None:
                return [], None
            targets = self.find_method(class_fq, call.name)
            return [t for t in targets if t in self.functions], None
        if call.form == "self_attr_method":
            class_fq = self._class_of(node)
            if class_fq is None:
                return [], None
            receiver = self.attr_type(class_fq, call.attr)
            if receiver is not None and receiver in self.classes:
                targets = self.find_method(receiver, call.name)
                return [t for t in targets if t in self.functions], None
            return [], None
        return [], None

    def resolve_ref(self, node: FunctionNode, ref: FuncRef) -> List[str]:
        """Repo functions a function *reference* denotes."""
        module = node.module
        if ref.form == "dotted":
            return [
                fq
                for fq in self._resolve_dotted(ref.name)
                if fq in self.functions
            ]
        if ref.form == "local":
            fq = f"{module.module}.{ref.name}"
            if fq in self.functions:
                return [fq]
            if fq in self.classes:
                return [
                    t
                    for t in self.find_method(fq, "__init__")
                    if t in self.functions
                ]
            return []
        if ref.form == "self_method":
            class_fq = self._class_of(node)
            if class_fq is None:
                return []
            return [
                t
                for t in self.find_method(class_fq, ref.name)
                if t in self.functions
            ]
        if ref.form == "nested":
            fq = f"{module.module}.{node.info.qual}.<locals>.{ref.name}"
            return [fq] if fq in self.functions else []
        if ref.form == "attr_method":
            chain = ref.name.split(".")
            if len(chain) == 3 and chain[0] == "self":
                class_fq = self._class_of(node)
                if class_fq is None:
                    return []
                receiver = self.attr_type(class_fq, chain[1])
                if receiver is not None and receiver in self.classes:
                    return [
                        t
                        for t in self.find_method(receiver, chain[2])
                        if t in self.functions
                    ]
        return []

    def _resolve_calls(self) -> None:
        for fq in sorted(self.functions):
            node = self.functions[fq]
            for call in node.info.calls:
                internal, external = self.resolve_site(node, call)
                for target in internal:
                    node.edges.append((call, target))
                if external is not None:
                    node.external.append((call, external))

    # -- execution contexts ---------------------------------------------

    def _classify_contexts(self) -> None:
        pending: List[Tuple[str, str]] = []
        for fq in sorted(self.functions):
            node = self.functions[fq]
            if node.info.is_async:
                pending.append((fq, CONTEXT_EVENT_LOOP))
            for dispatch in node.info.dispatches:
                context = _BOUNDARY_CONTEXT[dispatch.boundary]
                for target in self.resolve_ref(node, dispatch.target):
                    pending.append((target, context))
        # Declared spawn surfaces: the first function-reference argument
        # of a call to a registered qualname crosses into spawn context.
        for fq in sorted(self.functions):
            node = self.functions[fq]
            for call, target in node.edges:
                if target in SPAWN_DISPATCH_QUALNAMES and call.refs:
                    for spawned in self.resolve_ref(node, call.refs[0]):
                        pending.append((spawned, CONTEXT_SPAWN))
        while pending:
            fq, context = pending.pop()
            node = self.functions.get(fq)
            if node is None or context in node.contexts:
                continue
            node.contexts.add(context)
            for _, callee in node.edges:
                pending.append((callee, context))

    # -- blocking reachability ------------------------------------------

    def _direct_block_reason(
        self, node: FunctionNode, call: CallSite, external: Optional[str]
    ) -> Optional[str]:
        if external is not None:
            if external in BLOCKING_EXACT:
                return f"{external}()"
            for prefix in BLOCKING_PREFIXES:
                if external.startswith(prefix):
                    return f"{external}()"
            if call.form == "local" and external in BLOCKING_BUILTINS:
                return f"builtin {external}()"
        method = call.method
        if method in BLOCKING_METHOD_NAMES and call.form in (
            "self_attr_method",
            "local_attr_method",
            "unknown",
            "dotted",
        ):
            return f"file I/O ({method}())"
        if method in ENGINE_METHOD_NAMES:
            receiver = call.attr
            receiver_type = ""
            if call.form == "self_attr_method":
                class_fq = self._class_of(node)
                if class_fq is not None:
                    receiver_type = self.attr_type(class_fq, call.attr) or ""
            if (
                receiver in ENGINE_RECEIVER_NAMES
                or receiver_type.endswith(".Engine")
            ):
                return f"direct Engine.{method}()"
        return None

    def _compute_blocking(self) -> None:
        # Direct causes first, in deterministic order.
        for fq in sorted(self.functions):
            node = self.functions[fq]
            sites: List[Tuple[CallSite, Optional[str]]] = [
                (call, external) for call, external in node.external
            ]
            sites.extend(
                (call, None)
                for call in node.info.calls
                if call.form in ("self_attr_method", "local_attr_method", "unknown")
            )
            for call, external in sorted(
                sites, key=lambda item: (item[0].line, item[0].col)
            ):
                reason = self._direct_block_reason(node, call, external)
                if reason is not None:
                    self.blocking[fq] = BlockCause(site=call, reason=reason)
                    break
        # Propagate along direct call edges until fixpoint.
        changed = True
        while changed:
            changed = False
            for fq in sorted(self.functions):
                if fq in self.blocking:
                    continue
                node = self.functions[fq]
                for call, callee in node.edges:
                    if callee in self.blocking and callee != fq:
                        self.blocking[fq] = BlockCause(
                            site=call, reason="", via=callee
                        )
                        changed = True
                        break

    # -- convenience ----------------------------------------------------

    def direct_blocking_sites(
        self, fq: str
    ) -> List[Tuple[CallSite, str]]:
        """Every direct blocking primitive in ``fq`` (not only the first)."""
        node = self.functions[fq]
        results: List[Tuple[CallSite, str]] = []
        seen: Set[Tuple[int, int]] = set()
        sites: List[Tuple[CallSite, Optional[str]]] = list(node.external)
        sites.extend(
            (call, None)
            for call in node.info.calls
            if call.form in ("self_attr_method", "local_attr_method", "unknown")
        )
        for call, external in sorted(
            sites, key=lambda item: (item[0].line, item[0].col)
        ):
            reason = self._direct_block_reason(node, call, external)
            key = (call.line, call.col)
            if reason is not None and key not in seen:
                seen.add(key)
                results.append((call, reason))
        return results


@dataclass
class ProjectContext:
    """What a :class:`~repro.staticcheck.base.ProjectRule` runs over."""

    index: RepoIndex
    graph: CallGraph
