"""Phase 1 of the project-wide analyzer: the serializable repo index.

The graph rules (RC006–RC008) need facts no single-file pass can see:
which functions call which, which function references cross an
executor / thread / spawn boundary, and which module- or class-level
state is mutated where.  This module extracts those facts from the AST
of *one file at a time* into plain-data :class:`ModuleIndex` records —
JSON-serializable on purpose, so ``repro lint --changed`` can cache
them keyed on source content hash and only re-extract edited files.

Extraction is deliberately syntactic and conservative:

* call sites are normalized into a small set of *forms* (imported
  dotted name, same-module name, ``self.m()``, ``self.attr.m()``,
  method on a local variable) that phase 2 (:mod:`.graph`) resolves
  against the whole-repo symbol table;
* dispatch sites — ``loop.run_in_executor``, ``Executor.submit``,
  ``threading.Thread(target=)``, ``Process(target=)``,
  ``loop.call_soon/call_later`` — are recognized here because they
  need the argument expressions, which are not serialized;
* ``functools.partial`` is unwrapped one level when classifying a
  function reference;
* instance-attribute types are inferred from ``self.x = ClassName(...)``
  assignments and class-level annotations, which is enough to type the
  executor attributes and the observability surfaces the rules need.

Nothing here imports the code under check.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .base import ImportMap

__all__ = [
    "ANALYZER_SCHEMA_VERSION",
    "CallSite",
    "ClassInfo",
    "Dispatch",
    "FuncRef",
    "FunctionInfo",
    "ModuleIndex",
    "ModuleState",
    "RepoIndex",
    "build_module_index",
]

#: Bumped whenever extraction output changes shape or semantics, so a
#: stale on-disk cache can never feed phase 2 the wrong facts.
ANALYZER_SCHEMA_VERSION = 1

#: Method names that mutate their receiver in place.  Used both for
#: ``self.attr.append(...)`` (a write to the attribute) and for
#: ``MODULE_STATE.update(...)`` (a write to module state).
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

_MUTABLE_CONSTRUCTORS = {
    "dict": "dict",
    "list": "list",
    "set": "set",
    "bytearray": "bytearray",
    "collections.deque": "deque",
    "collections.defaultdict": "defaultdict",
    "collections.OrderedDict": "dict",
    "collections.Counter": "dict",
}

_EXECUTOR_KINDS = {
    "concurrent.futures.ThreadPoolExecutor": "thread",
    "concurrent.futures.thread.ThreadPoolExecutor": "thread",
    "concurrent.futures.ProcessPoolExecutor": "process",
    "concurrent.futures.process.ProcessPoolExecutor": "process",
}

#: ``loop.call_soon(cb, ...)`` style loop-callback surfaces mapped to
#: the argument index of the callback.
_LOOP_CALLBACKS = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
    "add_signal_handler": 1,
    "add_done_callback": 0,
}


@dataclass
class FuncRef:
    """A function *reference* (not a call): something passed by value."""

    form: str  # dotted|local|self_method|attr_method|bound|lambda|nested|other
    name: str = ""
    partial: bool = False
    line: int = 0
    col: int = 0


@dataclass
class CallSite:
    """One normalized ``ast.Call`` inside a function body."""

    line: int
    col: int
    form: str  # dotted|local|self_method|self_attr_method|local_attr_method|unknown
    name: str  # dotted path, local name, or method name (per form)
    attr: str = ""  # receiver: self-attribute or local variable name
    method: str = ""  # final attribute name, for method-name heuristics
    refs: List[FuncRef] = field(default_factory=list)


@dataclass
class Dispatch:
    """A call that hands a function reference to another execution context."""

    line: int
    col: int
    boundary: str  # "thread" | "spawn" | "loop"
    via: str  # human-readable surface, e.g. "Process(target=)"
    target: FuncRef = field(default_factory=FuncRef)
    arg_refs: List[FuncRef] = field(default_factory=list)


@dataclass
class FunctionInfo:
    """Everything phase 2 needs to know about one function or method."""

    qual: str  # "Class.method", "func", or "outer.<locals>.inner"
    line: int
    is_async: bool
    class_name: str = ""  # immediately enclosing class, "" at module level
    nested: bool = False  # defined inside another function (unpicklable)
    calls: List[CallSite] = field(default_factory=list)
    dispatches: List[Dispatch] = field(default_factory=list)
    state_reads: List[str] = field(default_factory=list)
    state_writes: List[Tuple[str, int]] = field(default_factory=list)
    attr_writes: List[Tuple[str, int]] = field(default_factory=list)
    # Writes through a typed receiver: ``self.engine.span_hook = ...``
    # becomes ("repro.engine.engine.Engine", "span_hook", line).
    ext_writes: List[Tuple[str, str, int]] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    line: int
    bases: List[str] = field(default_factory=list)  # dotted where resolvable
    attr_types: Dict[str, str] = field(default_factory=dict)
    executor_attrs: Dict[str, str] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)
    mutable_class_attrs: Dict[str, int] = field(default_factory=dict)


@dataclass
class ModuleState:
    """One module-level binding of interest to the race rules."""

    name: str
    line: int
    kind: str  # "list", "dict", ..., or "threading.local"
    synchronized: bool = False  # threading.local is safe by construction


@dataclass
class ModuleIndex:
    """The per-file phase-1 record; everything in it is JSON-plain."""

    path: str
    logical: str
    module: str  # dotted module for src/repro files, else the logical path
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    state: Dict[str, ModuleState] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ModuleIndex":
        index = ModuleIndex(
            path=str(payload["path"]),
            logical=str(payload["logical"]),
            module=str(payload["module"]),
        )
        for qual, raw in dict(payload["functions"]).items():
            info = FunctionInfo(
                qual=raw["qual"],
                line=raw["line"],
                is_async=raw["is_async"],
                class_name=raw["class_name"],
                nested=raw["nested"],
                state_reads=list(raw["state_reads"]),
                state_writes=[tuple(item) for item in raw["state_writes"]],
                attr_writes=[tuple(item) for item in raw["attr_writes"]],
                ext_writes=[tuple(item) for item in raw["ext_writes"]],
            )
            info.calls = [
                CallSite(
                    line=c["line"],
                    col=c["col"],
                    form=c["form"],
                    name=c["name"],
                    attr=c["attr"],
                    method=c["method"],
                    refs=[FuncRef(**r) for r in c["refs"]],
                )
                for c in raw["calls"]
            ]
            info.dispatches = [
                Dispatch(
                    line=d["line"],
                    col=d["col"],
                    boundary=d["boundary"],
                    via=d["via"],
                    target=FuncRef(**d["target"]),
                    arg_refs=[FuncRef(**r) for r in d["arg_refs"]],
                )
                for d in raw["dispatches"]
            ]
            index.functions[qual] = info
        for name, raw in dict(payload["classes"]).items():
            index.classes[name] = ClassInfo(
                name=raw["name"],
                line=raw["line"],
                bases=list(raw["bases"]),
                attr_types=dict(raw["attr_types"]),
                executor_attrs=dict(raw["executor_attrs"]),
                methods=list(raw["methods"]),
                mutable_class_attrs={
                    key: int(value)
                    for key, value in raw["mutable_class_attrs"].items()
                },
            )
        for name, raw in dict(payload["state"]).items():
            index.state[name] = ModuleState(
                name=raw["name"],
                line=raw["line"],
                kind=raw["kind"],
                synchronized=raw["synchronized"],
            )
        return index


@dataclass
class RepoIndex:
    """Phase-1 output for every file in the run, keyed by module."""

    modules: Dict[str, ModuleIndex] = field(default_factory=dict)

    def add(self, module: ModuleIndex) -> None:
        self.modules[module.module] = module


def _dotted(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Import-resolved dotted path for a Name/Attribute chain, if any."""
    return imports.resolve(node)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """["self", "audit", "record"] for ``self.audit.record``; None if
    the chain is not rooted in a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


class _Extractor:
    """Single-file extraction: two passes (module symbols, then bodies)."""

    def __init__(
        self,
        tree: ast.Module,
        imports: ImportMap,
        path: str,
        logical: str,
        module: str,
    ) -> None:
        self.tree = tree
        self.imports = imports
        self.index = ModuleIndex(path=path, logical=logical, module=module)
        self.module_classes: Dict[str, str] = {}  # local name -> fq name
        self.module_funcs: List[str] = []

    # -- pass 1: module-level symbols and state -------------------------

    def collect_module_symbols(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.module_classes[node.name] = (
                    f"{self.index.module}.{node.name}"
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_funcs.append(node.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._collect_state(node)

    def _collect_state(self, node: ast.stmt) -> None:
        targets: List[ast.expr]
        value: Optional[ast.expr]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        else:  # pragma: no cover - guarded by caller
            return
        if value is None:
            return
        kind = self._mutable_kind(value)
        if kind is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue
            self.index.state[name] = ModuleState(
                name=name,
                line=node.lineno,
                kind=kind,
                synchronized=(kind == "threading.local"),
            )

    def _mutable_kind(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func, self.imports)
            if dotted is None and isinstance(value.func, ast.Name):
                dotted = value.func.id
            if dotted in ("threading.local", "_thread._local"):
                return "threading.local"
            if dotted in _MUTABLE_CONSTRUCTORS:
                return _MUTABLE_CONSTRUCTORS[dotted]
        return None

    # -- pass 2: classes and function bodies ----------------------------

    def extract(self) -> ModuleIndex:
        self.collect_module_symbols()
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self._extract_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(node, class_name="", prefix="")
        return self.index

    def _extract_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, line=node.lineno)
        for base in node.bases:
            dotted = _dotted(base, self.imports)
            if dotted is None and isinstance(base, ast.Name):
                dotted = self.module_classes.get(
                    base.id, f"{self.index.module}.{base.id}"
                )
            if dotted is not None:
                info.bases.append(dotted)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.append(stmt.name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotated = self._annotation_type(stmt.annotation)
                if annotated is not None:
                    info.attr_types[stmt.target.id] = annotated
                kind = (
                    self._mutable_kind(stmt.value)
                    if stmt.value is not None
                    else None
                )
                if kind is not None and kind != "threading.local":
                    info.mutable_class_attrs[stmt.target.id] = stmt.lineno
            elif isinstance(stmt, ast.Assign):
                kind = self._mutable_kind(stmt.value)
                if kind is None or kind == "threading.local":
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.mutable_class_attrs[target.id] = stmt.lineno
        self.index.classes[node.name] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(stmt, class_name=node.name, prefix="")

    def _annotation_type(self, annotation: ast.expr) -> Optional[str]:
        # Unwrap Optional[T] / Final[T] one level.
        if isinstance(annotation, ast.Subscript):
            head = annotation.value
            head_name = head.attr if isinstance(head, ast.Attribute) else (
                head.id if isinstance(head, ast.Name) else ""
            )
            if head_name in ("Optional", "Final"):
                return self._annotation_type(annotation.slice)
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return self._resolve_class_name(annotation.value)
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            dotted = _dotted(annotation, self.imports)
            if dotted is not None:
                return dotted
            if isinstance(annotation, ast.Name):
                return self._resolve_class_name(annotation.id)
        return None

    def _resolve_class_name(self, name: str) -> Optional[str]:
        if name in self.module_classes:
            return self.module_classes[name]
        dotted = self.imports.aliases.get(name)
        return dotted

    def _extract_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str,
        prefix: str,
    ) -> None:
        qual = f"{prefix}{node.name}" if not class_name else (
            f"{class_name}.{node.name}"
            if not prefix
            else f"{prefix}{node.name}"
        )
        info = FunctionInfo(
            qual=qual,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
            nested="<locals>" in qual,
        )
        body = _FunctionBody(self, info, node)
        body.run()
        self.index.functions[qual] = info
        # Nested definitions become their own (unpicklable) records.
        for child in body.nested_defs:
            self._extract_function(
                child,
                class_name=class_name,
                prefix=f"{qual}.<locals>.",
            )


class _FunctionBody:
    """Walk one function body without descending into nested defs."""

    def __init__(
        self,
        extractor: _Extractor,
        info: FunctionInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.x = extractor
        self.info = info
        self.node = node
        self.nested_defs: List[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self._suppressed_calls: set[int] = set()
        self.local_names: set[str] = set()
        self.local_types: Dict[str, str] = {}
        self.global_decls: set[str] = set()
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.local_names.add(arg.arg)
            if arg.annotation is not None:
                annotated = self.x._annotation_type(arg.annotation)
                if annotated is not None:
                    self.local_types[arg.arg] = annotated

    def run(self) -> None:
        for stmt in self.node.body:
            self._walk(stmt)

    # -- statement/expression walk --------------------------------------

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_defs.append(node)
            self.local_names.add(node.name)
            return
        if isinstance(node, ast.Lambda):
            return  # lambdas are only of interest as references
        if isinstance(node, ast.Global):
            self.global_decls.update(node.names)
        elif isinstance(node, ast.Assign):
            self._handle_assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._handle_assign([node.target], node.value)
        elif isinstance(node, ast.AugAssign):
            self._handle_store(node.target, node.lineno)
        elif isinstance(node, ast.Call):
            if id(node) not in self._suppressed_calls:
                self._handle_call(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._handle_name_read(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _handle_assign(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        inferred = self._infer_type(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.global_decls:
                    self._record_state_write(target.id, target.lineno)
                else:
                    self.local_names.add(target.id)
                    if inferred is not None:
                        self.local_types[target.id] = inferred
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                self._handle_store(target, target.lineno)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.local_names.add(element.id)
                    elif isinstance(element, (ast.Attribute, ast.Subscript)):
                        self._handle_store(element, element.lineno)
        # ``self.x = ClassName(...)`` records an attribute type (and an
        # executor kind when the class is a stdlib executor).
        if inferred is not None and self.info.class_name:
            for target in targets:
                chain = (
                    _attr_chain(target)
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if chain is not None and len(chain) == 2 and chain[0] == "self":
                    class_info = self.x.index.classes.get(self.info.class_name)
                    if class_info is not None:
                        class_info.attr_types.setdefault(chain[1], inferred)
                        if inferred in _EXECUTOR_KINDS:
                            class_info.executor_attrs[chain[1]] = (
                                _EXECUTOR_KINDS[inferred]
                            )

    def _infer_type(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func, self.x.imports)
            if dotted is not None:
                return dotted
            if isinstance(value.func, ast.Name):
                return self.x._resolve_class_name(value.func.id)
            return None
        if isinstance(value, ast.Name):
            return self.local_types.get(value.id)
        if isinstance(value, ast.Attribute):
            # One attribute hop through a typed local: ``obs.metrics``.
            chain = _attr_chain(value)
            if chain is not None and len(chain) == 2:
                base_type = self.local_types.get(chain[0])
                if base_type is None and chain[0] == "self":
                    base_type = self._self_attr_type(chain[1])
                    return base_type
                if base_type is not None:
                    return self._attr_of_type(base_type, chain[1])
        return None

    def _self_attr_type(self, attr: str) -> Optional[str]:
        class_info = self.x.index.classes.get(self.info.class_name)
        if class_info is None:
            return None
        return class_info.attr_types.get(attr)

    def _attr_of_type(self, base_type: str, attr: str) -> Optional[str]:
        # Only same-file classes are visible during extraction; phase 2
        # re-resolves across modules where this returns None.
        for class_info in self.x.index.classes.values():
            fq = f"{self.x.index.module}.{class_info.name}"
            if base_type in (fq, class_info.name):
                return class_info.attr_types.get(attr)
        return None

    def _handle_store(self, target: ast.expr, line: int) -> None:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        chain = (
            _attr_chain(base) if isinstance(base, ast.Attribute) else None
        )
        if chain is not None and chain[0] == "self" and self.info.class_name:
            if len(chain) >= 2:
                # Store through self.attr (possibly deeper); the written
                # surface is the first attribute unless the receiver is
                # itself typed, in which case the write lands on that
                # class (``self.engine.span_hook = ...``).
                if len(chain) >= 3:
                    receiver_type = self._self_attr_type(chain[1])
                    if receiver_type is not None:
                        self.info.ext_writes.append(
                            (receiver_type, chain[2], line)
                        )
                        return
                self.info.attr_writes.append((chain[1], line))
            return
        if isinstance(base, ast.Name):
            name = base.id
            if isinstance(target, ast.Name) and name not in self.global_decls:
                self.local_names.add(name)
                return
            self._record_state_write(name, line)
            return
        if chain is not None:
            # ``local.attr = ...`` on a typed local.
            receiver_type = self.local_types.get(chain[0])
            if receiver_type is not None and len(chain) >= 2:
                self.info.ext_writes.append((receiver_type, chain[1], line))

    def _record_state_write(self, name: str, line: int) -> None:
        # Inventoried mutable state, or any ``global``-declared write
        # (rebinding a module-level scalar is still shared state).
        if name in self.x.index.state or name in self.global_decls:
            self.info.state_writes.append((name, line))

    def _handle_name_read(self, node: ast.Name) -> None:
        name = node.id
        if name in self.local_names or name in self.global_decls:
            if name in self.global_decls and name in self.x.index.state:
                self.info.state_reads.append(name)
            return
        if name in self.x.index.state:
            self.info.state_reads.append(name)

    # -- calls and dispatches -------------------------------------------

    def _func_ref(self, node: ast.expr) -> FuncRef:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        if isinstance(node, ast.Lambda):
            return FuncRef(form="lambda", line=line, col=col)
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func, self.x.imports)
            name = dotted or (
                node.func.id if isinstance(node.func, ast.Name) else ""
            )
            if name.endswith("partial") and node.args:
                inner = self._func_ref(node.args[0])
                inner.partial = True
                inner.line = inner.line or line
                return inner
            return FuncRef(form="other", name=name, line=line, col=col)
        if isinstance(node, ast.Name):
            dotted = self.x.imports.aliases.get(node.id)
            if dotted is not None:
                return FuncRef(form="dotted", name=dotted, line=line, col=col)
            if node.id in self.local_names:
                # A name bound inside this function: either a nested def
                # (never picklable) or a local alias / parameter whose
                # value we cannot resolve statically.
                form = "nested" if self._is_nested_def(node.id) else "localvar"
                return FuncRef(form=form, name=node.id, line=line, col=col)
            return FuncRef(form="local", name=node.id, line=line, col=col)
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node, self.x.imports)
            if dotted is not None:
                return FuncRef(form="dotted", name=dotted, line=line, col=col)
            chain = _attr_chain(node)
            if chain is not None and chain[0] == "self" and len(chain) == 2:
                return FuncRef(
                    form="self_method", name=chain[1], line=line, col=col
                )
            if chain is not None:
                return FuncRef(
                    form="attr_method",
                    name=".".join(chain),
                    line=line,
                    col=col,
                )
            return FuncRef(form="bound", name="", line=line, col=col)
        if isinstance(node, (ast.Constant,)):
            return FuncRef(form="const", line=line, col=col)
        return FuncRef(form="other", line=line, col=col)

    def _is_nested_def(self, name: str) -> bool:
        return any(child.name == name for child in self.nested_defs)

    def _positional_refs(self, args: Sequence[ast.expr]) -> List[FuncRef]:
        """One ref per positional argument, positions preserved, so a
        registered dispatch surface can inspect ``refs[0]``."""
        return [self._func_ref(arg) for arg in args]

    def _interesting_refs(self, args: Sequence[ast.expr]) -> List[FuncRef]:
        refs: List[FuncRef] = []
        for arg in args:
            elements: Sequence[ast.expr]
            if isinstance(arg, (ast.Tuple, ast.List)):
                elements = arg.elts
            else:
                elements = [arg]
            for element in elements:
                ref = self._func_ref(element)
                if ref.form in (
                    "lambda",
                    "nested",
                    "self_method",
                    "attr_method",
                    "dotted",
                    "local",
                    "bound",
                ):
                    refs.append(ref)
        return refs

    def _handle_call(self, node: ast.Call) -> None:
        site = self._call_site(node)
        if site is not None:
            self.info.calls.append(site)
        self._detect_dispatch(node, site)
        self._detect_mutation(node)

    def _detect_mutation(self, node: ast.Call) -> None:
        """``self.attr.append(...)`` / ``STATE.update(...)`` are writes."""
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in MUTATING_METHODS:
            return
        chain = _attr_chain(node.func)
        if chain is None or len(chain) < 2:
            return
        line = node.lineno
        if chain[0] == "self" and len(chain) >= 3 and self.info.class_name:
            self.info.attr_writes.append((chain[1], line))
        elif len(chain) == 2 and chain[0] not in self.local_names:
            self._record_state_write(chain[0], line)

    def _call_site(self, node: ast.Call) -> Optional[CallSite]:
        line, col = node.lineno, node.col_offset
        func = node.func
        refs = self._positional_refs(list(node.args))
        if isinstance(func, ast.Name):
            dotted = self.x.imports.aliases.get(func.id)
            if dotted is not None:
                return CallSite(
                    line=line, col=col, form="dotted", name=dotted, refs=refs
                )
            return CallSite(
                line=line, col=col, form="local", name=func.id, refs=refs
            )
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func, self.x.imports)
            method = func.attr
            if dotted is not None:
                return CallSite(
                    line=line,
                    col=col,
                    form="dotted",
                    name=dotted,
                    method=method,
                    refs=refs,
                )
            chain = _attr_chain(func)
            if chain is not None and chain[0] == "self":
                if len(chain) == 2:
                    return CallSite(
                        line=line,
                        col=col,
                        form="self_method",
                        name=chain[1],
                        method=method,
                        refs=refs,
                    )
                return CallSite(
                    line=line,
                    col=col,
                    form="self_attr_method",
                    name=method,
                    attr=chain[1],
                    method=method,
                    refs=refs,
                )
            if chain is not None and len(chain) == 2:
                return CallSite(
                    line=line,
                    col=col,
                    form="local_attr_method",
                    name=method,
                    attr=chain[0],
                    method=method,
                    refs=refs,
                )
            return CallSite(
                line=line,
                col=col,
                form="unknown",
                name=method,
                method=method,
                refs=refs,
            )
        return CallSite(line=line, col=col, form="unknown", name="", refs=refs)

    def _keyword(self, node: ast.Call, name: str) -> Optional[ast.expr]:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _detect_dispatch(
        self, node: ast.Call, site: Optional[CallSite]
    ) -> None:
        if site is None:
            return
        line, col = node.lineno, node.col_offset
        method = site.method or site.name.rsplit(".", 1)[-1]

        # ``asyncio.run(coro())`` and friends hand the coroutine to a
        # (possibly fresh) event loop: that is a context *boundary*, not
        # a direct call — a thread hosting a loop must not bleed its
        # thread context into the async world it drives.
        if (
            site.name in ("asyncio.run", "asyncio.run_coroutine_threadsafe")
            or method == "run_until_complete"
        ) and node.args:
            inner = node.args[0]
            if isinstance(inner, ast.Call):
                self._suppressed_calls.add(id(inner))
                target = self._func_ref(inner.func)
            else:
                target = self._func_ref(inner)
            self.info.dispatches.append(
                Dispatch(
                    line=line,
                    col=col,
                    boundary="loop",
                    via=method if method == "run_until_complete" else site.name,
                    target=target,
                    arg_refs=[],
                )
            )
            return

        if method == "run_in_executor" and node.args:
            kind = self._executor_kind(node.args[0])
            target = (
                self._func_ref(node.args[1]) if len(node.args) > 1 else FuncRef()
            )
            self.info.dispatches.append(
                Dispatch(
                    line=line,
                    col=col,
                    boundary="spawn" if kind == "process" else "thread",
                    via="run_in_executor",
                    target=target,
                    arg_refs=self._interesting_refs(list(node.args[2:])),
                )
            )
            return

        if method == "submit" and node.args:
            kind = self._receiver_executor_kind(node.func)
            if kind is not None:
                self.info.dispatches.append(
                    Dispatch(
                        line=line,
                        col=col,
                        boundary="spawn" if kind == "process" else "thread",
                        via="Executor.submit",
                        target=self._func_ref(node.args[0]),
                        arg_refs=self._interesting_refs(list(node.args[1:])),
                    )
                )
            return

        if method in ("Thread", "Process") or site.name in (
            "threading.Thread",
            "multiprocessing.Process",
        ):
            target_expr = self._keyword(node, "target")
            if target_expr is None:
                return
            boundary = (
                "spawn"
                if method == "Process" or site.name.endswith("Process")
                else "thread"
            )
            args_expr = self._keyword(node, "args")
            arg_refs = (
                self._interesting_refs([args_expr])
                if args_expr is not None
                else []
            )
            self.info.dispatches.append(
                Dispatch(
                    line=line,
                    col=col,
                    boundary=boundary,
                    via=f"{method}(target=)",
                    target=self._func_ref(target_expr),
                    arg_refs=arg_refs,
                )
            )
            return

        if method in _LOOP_CALLBACKS:
            index = _LOOP_CALLBACKS[method]
            if len(node.args) > index:
                self.info.dispatches.append(
                    Dispatch(
                        line=line,
                        col=col,
                        boundary="loop",
                        via=method,
                        target=self._func_ref(node.args[index]),
                        arg_refs=[],
                    )
                )

    def _executor_kind(self, node: ast.expr) -> str:
        """Executor kind for ``run_in_executor``'s first argument."""
        if isinstance(node, ast.Constant) and node.value is None:
            return "thread"  # the default executor is a thread pool
        chain = _attr_chain(node)
        if chain is not None and chain[0] == "self" and len(chain) == 2:
            class_info = self.x.index.classes.get(self.info.class_name)
            if class_info is not None:
                return class_info.executor_attrs.get(chain[1], "thread")
        if isinstance(node, ast.Name):
            local_type = self.local_types.get(node.id)
            if local_type in _EXECUTOR_KINDS:
                return _EXECUTOR_KINDS[local_type]
        return "thread"

    def _receiver_executor_kind(self, func: ast.expr) -> Optional[str]:
        if not isinstance(func, ast.Attribute):
            return None
        chain = _attr_chain(func)
        if chain is None:
            return None
        if chain[0] == "self" and len(chain) == 3:
            class_info = self.x.index.classes.get(self.info.class_name)
            if class_info is not None:
                return class_info.executor_attrs.get(chain[1])
            return None
        if len(chain) == 2:
            local_type = self.local_types.get(chain[0])
            if local_type in _EXECUTOR_KINDS:
                return _EXECUTOR_KINDS[local_type]
        return None


def build_module_index(
    tree: ast.Module,
    imports: ImportMap,
    path: str,
    logical: str,
    module: Optional[str],
) -> ModuleIndex:
    """Extract the phase-1 record for one parsed file.

    ``module`` is the dotted module path for files under ``src/repro``;
    for other files (tests, scripts) the logical path doubles as the
    module key so the graph can still join them.
    """
    extractor = _Extractor(
        tree=tree,
        imports=imports,
        path=path,
        logical=logical,
        module=module or logical,
    )
    return extractor.extract()
