"""RC005 cache-purity: engine-cacheable functions must be pure.

The engine memoizes exact evaluation results keyed on the immutable
``(protocol, topology, run)`` triple.  That is only sound if the
functions producing those results are deterministic, side-effect-free
functions of their arguments — the registry
:data:`repro.engine.engine.CACHEABLE_QUALNAMES` names them, and this
rule verifies each one's body syntactically:

* no ``global`` / ``nonlocal`` statements (a cached result must not
  depend on or update module state);
* no calls into RNG or clock APIs (``random.*``, ``numpy.random.*``,
  ``time.*``, ``datetime.*``, ``secrets.*``, ``uuid.*``, and the
  repo's own ``spawn_*`` / ``monotonic`` helpers) — a cache hit
  replays the stored value, so any entropy or timestamp the function
  consumed would be silently frozen;
* no mutation of parameters (assignment or ``del`` through a
  parameter's attribute/subscript, or mutating method calls such as
  ``.append`` / ``.update`` on a bare parameter) — callers hand the
  engine shared immutable values.

The rule also covers the **cache surface itself**:
:data:`repro.engine.cache.CACHE_SURFACE_QUALNAMES` registers the
methods of every :class:`~repro.engine.cache.EngineCache`
implementation (``get`` / ``put`` / snapshot export/import).  Those
run under the same no-globals / no-RNG / no-clock discipline, with
one relaxation: mutating *their own* state through ``self`` is their
job, so ``self`` is exempt from the argument-mutation check — keys
and results stay immutable shared values.

The check is intraprocedural: helpers a cacheable function calls are
not followed.  A registered qualname whose function is missing from
its module is reported as a stale registration.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .base import FileContext, Rule, Violation, register

#: Dotted-call prefixes whose use makes a cacheable function impure.
_IMPURE_CALL_PREFIXES = (
    "random.",
    "numpy.random.",
    "time.",
    "datetime.",
    "secrets.",
    "uuid.",
    "os.urandom",
    "os.environ",
    "repro.core.seeding.",
    "repro.obs.runtime.monotonic",
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
        "write",
    }
)


#: Registry entry: (qualname, exempt_self) — cache-surface methods may
#: mutate their receiver, evaluation functions may not touch anything.
Target = Tuple[str, bool]


def _load_registry() -> Dict[str, Dict[Tuple[str, ...], Target]]:
    """``{module: {(class?, function): (qualname, exempt_self)}}``.

    Imported lazily so the analyzer framework itself stays import-free
    of the code under check.
    """
    from ..engine.cache import CACHE_SURFACE_QUALNAMES
    from ..engine.engine import CACHEABLE_QUALNAMES

    registry: Dict[str, Dict[Tuple[str, ...], Target]] = {}
    surfaces = (
        (CACHEABLE_QUALNAMES, False),
        (CACHE_SURFACE_QUALNAMES, True),
    )
    for qualnames, exempt_self in surfaces:
        for qualname in qualnames:
            parts = qualname.split(".")
            # The object path is the trailing CamelCase/function
            # segments; everything up to the last lowercase module
            # segment is the module.  Convention in this repo: modules
            # are lowercase, classes are CamelCase, so split at the
            # first capitalized segment (or the final segment for
            # plain functions).
            split = len(parts) - 1
            for index, part in enumerate(parts):
                if part[:1].isupper():
                    split = index
                    break
            module = ".".join(parts[:split])
            objpath = tuple(parts[split:])
            registry.setdefault(module, {})[objpath] = (qualname, exempt_self)
    return registry


def _find_function(
    tree: ast.Module, objpath: Tuple[str, ...]
) -> Optional[ast.FunctionDef]:
    body: List[ast.stmt] = list(tree.body)
    for index, name in enumerate(objpath):
        found: Optional[ast.stmt] = None
        for stmt in body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.ClassDef))
                and stmt.name == name
            ):
                found = stmt
                break
        if found is None:
            return None
        if index == len(objpath) - 1:
            return found if isinstance(found, ast.FunctionDef) else None
        if not isinstance(found, ast.ClassDef):
            return None
        body = list(found.body)
    return None


def _parameter_names(func: ast.FunctionDef) -> Set[str]:
    args = func.args
    names = {arg.arg for arg in args.posonlyargs}
    names.update(arg.arg for arg in args.args)
    names.update(arg.arg for arg in args.kwonlyargs)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _base_name(node: ast.AST) -> Optional[str]:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class CachePurity(Rule):
    rule_id = "RC005"
    name = "cache-purity"
    summary = (
        "engine-cacheable functions (CACHEABLE_QUALNAMES) must not "
        "touch globals, mutate arguments, or call RNG/clock APIs"
    )

    def __init__(self) -> None:
        self._registry: Optional[
            Dict[str, Dict[Tuple[str, ...], Target]]
        ] = None

    def _targets(
        self, module: Optional[str]
    ) -> Dict[Tuple[str, ...], Target]:
        if self._registry is None:
            self._registry = _load_registry()
        if module is None:
            return {}
        return self._registry.get(module, {})

    def applies(self, ctx: FileContext) -> bool:
        return bool(self._targets(ctx.module))

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        targets = self._targets(ctx.module)
        for objpath, (qualname, exempt_self) in sorted(targets.items()):
            func = _find_function(ctx.tree, objpath)
            if func is None:
                yield Violation(
                    path=ctx.path,
                    line=1,
                    column=1,
                    rule=self.rule_id,
                    message=(
                        f"stale cacheable registration: {qualname!r} is "
                        "not defined in this module; update "
                        "repro.engine.engine.CACHEABLE_QUALNAMES / "
                        "repro.engine.cache.CACHE_SURFACE_QUALNAMES"
                    ),
                )
                continue
            yield from self._check_purity(ctx, func, qualname, exempt_self)

    def _check_purity(
        self,
        ctx: FileContext,
        func: ast.FunctionDef,
        qualname: str,
        exempt_self: bool = False,
    ) -> Iterator[Violation]:
        params = _parameter_names(func)
        if exempt_self and func.args.args:
            # Cache-surface methods mutate their own state by design;
            # the receiver is exempt, keys/results stay immutable.
            params.discard(func.args.args[0].arg)
        label = (
            f"cache-surface method {qualname!r}"
            if exempt_self
            else f"cacheable function {qualname!r}"
        )
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.violation(
                    ctx,
                    node,
                    f"{label} declares "
                    f"`{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                    f" {', '.join(node.names)}`: cached results must not "
                    "depend on or update surrounding state",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, params, label)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                yield from self._check_mutation(ctx, node, params, label)

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        params: Set[str],
        label: str,
    ) -> Iterator[Violation]:
        name = ctx.imports.resolve(node.func)
        if name is not None:
            for prefix in _IMPURE_CALL_PREFIXES:
                if name == prefix.rstrip(".") or name.startswith(prefix):
                    yield self.violation(
                        ctx,
                        node,
                        f"{label} calls `{name}(...)`: a memoized result "
                        "would silently freeze the entropy/timestamp it "
                        "consumed",
                    )
                    return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and _base_name(func.value) in params
        ):
            yield self.violation(
                ctx,
                node,
                f"{label} calls `.{func.attr}(...)` on parameter "
                f"`{_base_name(func.value)}`: arguments are shared, "
                "treat them as immutable",
            )

    def _check_mutation(
        self,
        ctx: FileContext,
        node: ast.stmt,
        params: Set[str],
        label: str,
    ) -> Iterator[Violation]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            for target in node.targets:
                targets.extend(
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            base = _base_name(target)
            if base in params:
                yield self.violation(
                    ctx,
                    node,
                    f"{label} writes through parameter `{base}`: "
                    "arguments are shared, treat them as immutable",
                )
