"""RC006 — async-discipline: no blocking calls on the serving event loop.

The serving tier's latency story depends on one invariant: the asyncio
event loop only ever does O(µs) work between awaits.  Engine
evaluation goes through the micro-batcher's single-thread executor,
process-wide work goes through the worker pool, and anything that
touches a file, a socket, a subprocess, or ``time.sleep`` must be
dispatched with ``run_in_executor``.

This rule enforces that project-wide: any function classified as
running in ``event_loop`` context (an ``async def``, or a sync helper
called directly from one) that lives under ``src/repro/service/`` must
not

* call a blocking primitive directly (``time.sleep``, ``open``,
  ``subprocess.*``, ``socket.*``, ``os`` file ops, pathlib
  ``read_/write_`` helpers), nor
* call ``Engine.evaluate`` / ``Engine.evaluate_many`` directly (that
  is what the batcher's engine executor exists for), nor
* call — directly or transitively — a repo function that does either.

The call graph supplies the transitive part: a helper that merely
*looks* cheap but bottoms out in ``AuditLogger.record``'s file append
is reported at the call site inside the event-loop function, with the
blocking chain spelled out in the message.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from .base import ProjectRule, Violation, register
from .graph import CONTEXT_EVENT_LOOP, ProjectContext, _short

__all__ = ["AsyncDiscipline"]

_SCOPE_PREFIX = "src/repro/service/"


@register
class AsyncDiscipline(ProjectRule):
    rule_id = "RC006"
    name = "async-discipline"
    summary = (
        "functions running in event-loop context under service/ must not "
        "call blocking I/O, time.sleep, subprocess, or Engine.evaluate* — "
        "directly or through helpers; dispatch through an executor instead"
    )

    def check_project(self, project: object) -> Iterator[Violation]:
        assert isinstance(project, ProjectContext)
        graph = project.graph
        for fq in sorted(graph.functions):
            node = graph.functions[fq]
            if not node.module.logical.startswith(_SCOPE_PREFIX):
                continue
            if CONTEXT_EVENT_LOOP not in node.contexts:
                continue
            reported: Set[Tuple[int, int]] = set()
            for call, reason in graph.direct_blocking_sites(fq):
                key = (call.line, call.col)
                if key in reported:
                    continue
                reported.add(key)
                yield self.project_violation(
                    path=node.module.path,
                    line=call.line,
                    column=call.col + 1,
                    message=(
                        f"blocking call on the event loop: {reason} inside "
                        f"{_short(fq)} runs in event-loop context; dispatch "
                        "it through run_in_executor, the engine executor, "
                        "or the worker pool"
                    ),
                )
            seen_callees: Set[Tuple[int, str]] = set()
            for call, callee in node.edges:
                cause = graph.blocking.get(callee)
                if cause is None or callee == fq:
                    continue
                callee_node = graph.functions[callee]
                # The callee will carry its own report when it is itself
                # an in-scope event-loop function; reporting the edge
                # too would double-count one defect.
                if (
                    callee_node.module.logical.startswith(_SCOPE_PREFIX)
                    and CONTEXT_EVENT_LOOP in callee_node.contexts
                ):
                    continue
                key = (call.line, callee)
                if key in seen_callees or (call.line, call.col) in reported:
                    continue
                seen_callees.add(key)
                chain = cause.render(graph)
                detail = (
                    f"blocks on {chain}" if cause.via is None else chain
                )
                yield self.project_violation(
                    path=node.module.path,
                    line=call.line,
                    column=call.col + 1,
                    message=(
                        f"event-loop function {_short(fq)} calls "
                        f"{_short(callee)}, which {detail}; move the call "
                        "off-loop via run_in_executor or make the helper "
                        "non-blocking"
                    ),
                )
