"""RC008 — shared-state discipline: a static race detector.

The serving tier runs three execution contexts in one process: the
asyncio event loop, the engine executor thread (plus the default
thread pool), and — in children — spawn context.  Any module-level or
class-level mutable state *written* from more than one of the
in-process contexts (``event_loop`` and ``thread``) is a data race
waiting for a scheduler to find it, exactly the class of bug the
paper's adversarial schedulers formalize.

Like RC005's ``CACHE_SURFACE_QUALNAMES``, the escape hatch is an
explicit registry: ``SYNCHRONIZED_QUALNAMES`` in
:mod:`repro.obs.runtime` names the surfaces that are deliberately
written from several contexts and carry their own synchronization —
``MetricsRegistry`` (GIL-atomic counters), ``AuditLogger`` (lock +
writer thread), ``Tracer`` (lock + per-thread span stacks), the engine
with its busy-guard.  Registering a surface is a reviewed act: the
registry lives next to the code that implements the synchronization,
so the claim and the lock travel together.

``threading.local`` state is exempt by construction, and so are
``__init__`` self-writes: constructing an object and *then* handing it
to another context is ordered by the submission happens-before edge
(publication), not a race.  Spawn context is *not* counted here —
children share no memory with the parent; the cross-process hazard
(module state on both sides of a spawn boundary) is RC007's.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .base import ProjectRule, Violation, register
from .graph import (
    CONTEXT_EVENT_LOOP,
    CONTEXT_THREAD,
    CallGraph,
    ProjectContext,
)
from .index import ModuleIndex

__all__ = ["SharedStateDiscipline"]

_SCOPE_PREFIXES = (
    "src/repro/service/",
    "src/repro/engine/",
    "src/repro/obs/",
)

_RACY_CONTEXTS = frozenset({CONTEXT_EVENT_LOOP, CONTEXT_THREAD})

_registry_cache: Optional[FrozenSet[str]] = None


def _load_registry() -> FrozenSet[str]:
    """The declared-synchronized qualnames, mirroring RC005's pattern.

    Importing :mod:`repro.obs.runtime` is importing this package's own
    distribution, not the code under check in general — the same
    carve-out RC005 uses for the cacheable registry.  When the import
    fails (e.g. the analyzer vendored elsewhere), the registry is
    empty and the rule simply reports everything it sees.
    """
    global _registry_cache
    if _registry_cache is None:
        try:
            from ..obs.runtime import SYNCHRONIZED_QUALNAMES

            _registry_cache = frozenset(SYNCHRONIZED_QUALNAMES)
        except Exception:  # pragma: no cover - vendored analyzer
            _registry_cache = frozenset()
    return _registry_cache


def _in_scope(module: ModuleIndex) -> bool:
    return any(module.logical.startswith(p) for p in _SCOPE_PREFIXES)


@register
class SharedStateDiscipline(ProjectRule):
    rule_id = "RC008"
    name = "shared-state"
    summary = (
        "module- or class-level mutable state written from more than one "
        "execution context (event loop / threads) must be registered in "
        "SYNCHRONIZED_QUALNAMES with real synchronization to match"
    )

    def check_project(self, project: object) -> Iterator[Violation]:
        assert isinstance(project, ProjectContext)
        registry = _load_registry()
        yield from self._check_classes(project, registry)
        yield from self._check_module_state(project, registry)

    # -- class-level (instance attribute) state -------------------------

    def _check_classes(
        self, project: ProjectContext, registry: FrozenSet[str]
    ) -> Iterator[Violation]:
        graph = project.graph
        # attr -> list of (context, writer fq, line), per class.
        writes: Dict[str, Dict[str, List[Tuple[str, str, int]]]] = {}

        def record(
            class_fq: str, attr: str, contexts: Set[str], fq: str, line: int
        ) -> None:
            for context in sorted(contexts & _RACY_CONTEXTS):
                writes.setdefault(class_fq, {}).setdefault(attr, []).append(
                    (context, fq, line)
                )

        for fq in sorted(graph.functions):
            node = graph.functions[fq]
            if node.info.class_name and _in_scope(node.module):
                # Constructor writes publish, they do not race: the
                # object cannot be visible to another context before
                # __init__ returns and the hand-off orders the memory.
                if node.info.qual.endswith("__init__"):
                    continue
                class_fq = f"{node.module.module}.{node.info.class_name}"
                for attr, line in node.info.attr_writes:
                    record(class_fq, attr, node.contexts, fq, line)
            # Writes through typed receivers land on the target class.
            for receiver_type, attr, line in node.info.ext_writes:
                target = self._resolve_class(graph, node.module, receiver_type)
                if target is not None and _in_scope(
                    graph.classes[target].module
                ):
                    record(target, attr, node.contexts, fq, line)

        for class_fq in sorted(writes):
            class_node = graph.classes.get(class_fq)
            if class_node is None:
                continue
            if class_fq in registry:
                continue
            for attr in sorted(writes[class_fq]):
                if f"{class_fq}.{attr}" in registry:
                    continue
                entries = writes[class_fq][attr]
                contexts = {context for context, _, _ in entries}
                if len(contexts) < 2:
                    continue
                line = min(entry_line for _, _, entry_line in entries)
                writers = ", ".join(
                    sorted({_tail(fq) for _, fq, _ in entries})
                )
                yield self.project_violation(
                    path=class_node.module.path,
                    line=line,
                    column=1,
                    message=(
                        f"attribute {class_node.info.name}.{attr} is written "
                        f"from multiple execution contexts "
                        f"({', '.join(sorted(contexts))}; writers: {writers}) "
                        "without a registered synchronization surface; add "
                        "real synchronization and register the owner in "
                        "SYNCHRONIZED_QUALNAMES (repro.obs.runtime)"
                    ),
                )

    @staticmethod
    def _resolve_class(
        graph: CallGraph, module: ModuleIndex, receiver_type: str
    ) -> Optional[str]:
        if receiver_type in graph.classes:
            return receiver_type
        local = f"{module.module}.{receiver_type}"
        if local in graph.classes:
            return local
        return None

    # -- module-level state ---------------------------------------------

    def _check_module_state(
        self, project: ProjectContext, registry: FrozenSet[str]
    ) -> Iterator[Violation]:
        graph = project.graph
        for module_key in sorted(project.index.modules):
            module = project.index.modules[module_key]
            if not _in_scope(module):
                continue
            # name -> (context, writer qual, line)
            writes: Dict[str, List[Tuple[str, str, int]]] = {}
            for qual, info in module.functions.items():
                fn_fq = f"{module.module}.{qual}"
                fn_node = graph.functions.get(fn_fq)
                contexts = (
                    fn_node.contexts if fn_node is not None else set()
                ) & _RACY_CONTEXTS
                if not contexts:
                    continue
                for name, line in info.state_writes:
                    for context in sorted(contexts):
                        writes.setdefault(name, []).append(
                            (context, qual, line)
                        )
            for name in sorted(writes):
                state = module.state.get(name)
                if state is not None and state.synchronized:
                    continue
                if f"{module.module}.{name}" in registry:
                    continue
                entries = writes[name]
                contexts = {context for context, _, _ in entries}
                if len(contexts) < 2:
                    continue
                line = (
                    state.line
                    if state is not None
                    else min(entry_line for _, _, entry_line in entries)
                )
                writers = ", ".join(sorted({qual for _, qual, _ in entries}))
                yield self.project_violation(
                    path=module.path,
                    line=line,
                    column=1,
                    message=(
                        f"module-level mutable state {name!r} is written "
                        f"from multiple execution contexts "
                        f"({', '.join(sorted(contexts))}; writers: {writers}) "
                        "without synchronization; guard it and register "
                        f"'{module.module}.{name}' in SYNCHRONIZED_QUALNAMES, "
                        "or confine writes to one context"
                    ),
                )


def _tail(fq: str) -> str:
    parts = fq.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else fq
