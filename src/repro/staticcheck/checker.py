"""Orchestration: walk files, run rules, apply per-line suppressions.

Suppression syntax (per physical line)::

    risky_call()  # repro: noqa[RC001] seed comes from the CLI flag

* the bracket names one or more rule ids (``noqa[RC001,RC003]``);
* the trailing text is the *justification* and is mandatory — a
  suppression without one is itself a violation (RC000);
* a suppression that suppresses nothing is reported as unused (RC000),
  so stale noqa comments cannot accumulate.

Fixture files override their logical path (which rules scope on) with
a ``# repro: path=src/repro/...`` comment; the directory walker skips
directories named ``fixtures`` precisely so those deliberately-bad
files only get checked when named explicitly.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .base import RULES, FileContext, Violation

__all__ = [
    "check_file",
    "check_paths",
    "check_source",
    "iter_python_files",
]

#: Directory names the recursive walk never descends into.  ``fixtures``
#: holds deliberately-violating lint-test inputs; explicit file
#: arguments bypass this list.
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", "fixtures", ".git", ".hypothesis", "build", "dist"}
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?:\[(?P<rules>[^\]]*)\])?(?P<reason>.*)$"
)
_PATH_RE = re.compile(r"#\s*repro:\s*path=(?P<path>\S+)")


@dataclass
class _Noqa:
    """One ``# repro: noqa[...]`` comment."""

    line: int
    column: int
    rules: Tuple[str, ...]
    reason: str
    used: Set[str] = field(default_factory=set)


def _scan_comments(source: str) -> Tuple[Optional[str], List[_Noqa]]:
    """Extract the path directive and noqa comments via tokenize."""
    path_directive: Optional[str] = None
    noqas: List[_Noqa] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            path_match = _PATH_RE.search(token.string)
            if path_match and path_directive is None:
                path_directive = path_match.group("path")
                continue
            noqa_match = _NOQA_RE.search(token.string)
            if noqa_match:
                rules_text = noqa_match.group("rules")
                rules: Tuple[str, ...] = ()
                if rules_text is not None:
                    rules = tuple(
                        part.strip()
                        for part in rules_text.split(",")
                        if part.strip()
                    )
                reason = noqa_match.group("reason").strip()
                reason = reason.lstrip("-—:– ").strip()
                noqas.append(
                    _Noqa(
                        line=token.start[0],
                        column=token.start[1] + 1,
                        rules=rules,
                        reason=reason,
                    )
                )
    except tokenize.TokenError:
        pass  # unterminated constructs; ast.parse already succeeded/failed
    return path_directive, noqas


def _logical_path(path: str) -> str:
    """Best-effort repo-logical posix path for a real filesystem path."""
    resolved = Path(path).resolve().as_posix()
    parts = resolved.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "src" and index + 1 < len(parts) and parts[
            index + 1
        ] == "repro":
            return "/".join(parts[index:])
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and parts[-1].endswith(".py"):
            return "src/" + "/".join(parts[index:])
        if parts[index] == "tests":
            return "/".join(parts[index:])
    return parts[-1]


def _suppression_violations(
    path: str, noqas: List[_Noqa]
) -> Iterator[Violation]:
    """RC000: bare / unknown / unjustified / unused suppressions."""
    for noqa in noqas:
        if not noqa.rules:
            yield Violation(
                path=path,
                line=noqa.line,
                column=noqa.column,
                rule="RC000",
                message=(
                    "bare suppression: name the rule(s), e.g. "
                    "`# repro: noqa[RC001] reason`"
                ),
            )
            continue
        unknown = [rule for rule in noqa.rules if rule not in RULES]
        for rule in unknown:
            yield Violation(
                path=path,
                line=noqa.line,
                column=noqa.column,
                rule="RC000",
                message=f"suppression names unknown rule {rule!r}",
            )
        if not noqa.reason:
            yield Violation(
                path=path,
                line=noqa.line,
                column=noqa.column,
                rule="RC000",
                message=(
                    "suppression missing justification: follow the "
                    "bracket with a reason, e.g. "
                    "`# repro: noqa[RC001] seed is user-supplied`"
                ),
            )
        for rule in noqa.rules:
            if rule in RULES and rule not in noqa.used:
                yield Violation(
                    path=path,
                    line=noqa.line,
                    column=noqa.column,
                    rule="RC000",
                    message=(
                        f"unused suppression: no {rule} violation on "
                        "this line"
                    ),
                )


def check_source(
    source: str,
    path: str,
    logical: Optional[str] = None,
) -> List[Violation]:
    """Lint one source string; returns unfiltered, sorted violations."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1),
                rule="RC999",
                message=f"syntax error: {error.msg}",
            )
        ]
    directive, noqas = _scan_comments(source)
    ctx = FileContext(
        path=path,
        logical=directive or logical or _logical_path(path),
        source=source,
        tree=tree,
    )
    raw: List[Violation] = []
    for rule in RULES.values():
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))

    by_line: Dict[int, List[_Noqa]] = {}
    for noqa in noqas:
        by_line.setdefault(noqa.line, []).append(noqa)
    kept: List[Violation] = []
    for violation in raw:
        suppressed = False
        for noqa in by_line.get(violation.line, ()):
            if violation.rule in noqa.rules:
                noqa.used.add(violation.rule)
                suppressed = True
        if not suppressed:
            kept.append(violation)
    kept.extend(_suppression_violations(path, noqas))
    return sorted(kept)


def check_file(path: str) -> List[Violation]:
    """Lint one file on disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return check_source(source, path)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files and directories into the .py files to check.

    Directories are walked recursively, skipping :data:`SKIP_DIR_NAMES`
    and hidden directories; explicitly named files are always included.
    """
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if d not in SKIP_DIR_NAMES and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def check_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns (violations, files_checked).

    ``select`` keeps only the named rule ids; ``ignore`` drops them.
    Raises ``FileNotFoundError`` for a path that does not exist.
    """
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(path)
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    violations: List[Violation] = []
    files_checked = 0
    for file_path in iter_python_files(paths):
        files_checked += 1
        for violation in check_file(file_path):
            if selected is not None and violation.rule not in selected:
                continue
            if violation.rule in ignored:
                continue
            violations.append(violation)
    return sorted(violations), files_checked
