"""Orchestration: walk files, run rules, apply per-line suppressions.

The checker now runs in two phases.  Phase 1 parses every file once
and produces, per file, the *raw* per-file-rule violations, the noqa
comments, and a serializable :class:`~repro.staticcheck.index.ModuleIndex`
(symbol tables, normalized call sites, dispatch boundaries, mutable
state).  Phase 2 aggregates the module indexes into a
:class:`~repro.staticcheck.graph.CallGraph` and runs the project-wide
rules (RC006–RC008) over it.  Only then are suppressions applied, so a
``# repro: noqa[RC006] reason`` works on a graph-derived finding
exactly like on a syntactic one — including unused-suppression
detection (RC000).

Because the phase-1 record is plain data, it caches: ``check_paths``
accepts a cache file keyed on source content hash, and unchanged
files skip parsing and per-file rules entirely (the project rules
always re-run — they are cheap once the index exists, and their
results depend on *other* files).

Suppression syntax (per physical line)::

    risky_call()  # repro: noqa[RC001] seed comes from the CLI flag

* the bracket names one or more rule ids (``noqa[RC001,RC003]``);
* the trailing text is the *justification* and is mandatory — a
  suppression without one is itself a violation (RC000);
* a suppression that suppresses nothing is reported as unused (RC000),
  so stale noqa comments cannot accumulate.

Fixture files override their logical path (which rules scope on) with
a ``# repro: path=src/repro/...`` comment; the directory walker skips
directories named ``fixtures`` precisely so those deliberately-bad
files only get checked when named explicitly.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .base import RULES, FileContext, Violation
from .graph import CallGraph, ProjectContext
from .index import ANALYZER_SCHEMA_VERSION, ModuleIndex, RepoIndex, build_module_index

__all__ = [
    "check_file",
    "check_paths",
    "check_source",
    "iter_python_files",
]

#: Directory names the recursive walk never descends into.  ``fixtures``
#: holds deliberately-violating lint-test inputs; explicit file
#: arguments bypass this list.
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", "fixtures", ".git", ".hypothesis", "build", "dist"}
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?:\[(?P<rules>[^\]]*)\])?(?P<reason>.*)$"
)
_PATH_RE = re.compile(r"#\s*repro:\s*path=(?P<path>\S+)")


@dataclass
class _Noqa:
    """One ``# repro: noqa[...]`` comment."""

    line: int
    column: int
    rules: Tuple[str, ...]
    reason: str
    used: Set[str] = field(default_factory=set)


@dataclass
class _FileRecord:
    """Phase-1 output for one file (cacheable as plain data)."""

    path: str
    logical: str
    digest: str = ""
    raw: List[Violation] = field(default_factory=list)  # pre-noqa, per-file
    noqas: List[_Noqa] = field(default_factory=list)
    index: Optional[ModuleIndex] = None
    error: Optional[Violation] = None  # RC999: parse/decode failure


def _scan_comments(source: str) -> Tuple[Optional[str], List[_Noqa]]:
    """Extract the path directive and noqa comments via tokenize."""
    path_directive: Optional[str] = None
    noqas: List[_Noqa] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            path_match = _PATH_RE.search(token.string)
            if path_match and path_directive is None:
                path_directive = path_match.group("path")
                continue
            noqa_match = _NOQA_RE.search(token.string)
            if noqa_match:
                rules_text = noqa_match.group("rules")
                rules: Tuple[str, ...] = ()
                if rules_text is not None:
                    rules = tuple(
                        part.strip()
                        for part in rules_text.split(",")
                        if part.strip()
                    )
                reason = noqa_match.group("reason").strip()
                reason = reason.lstrip("-—:– ").strip()
                noqas.append(
                    _Noqa(
                        line=token.start[0],
                        column=token.start[1] + 1,
                        rules=rules,
                        reason=reason,
                    )
                )
    except tokenize.TokenError:
        pass  # unterminated constructs; ast.parse already succeeded/failed
    return path_directive, noqas


def _logical_path(path: str) -> str:
    """Best-effort repo-logical posix path for a real filesystem path."""
    resolved = Path(path).resolve().as_posix()
    parts = resolved.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "src" and index + 1 < len(parts) and parts[
            index + 1
        ] == "repro":
            return "/".join(parts[index:])
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and parts[-1].endswith(".py"):
            return "src/" + "/".join(parts[index:])
        if parts[index] == "tests":
            return "/".join(parts[index:])
    return parts[-1]


def _suppression_violations(
    path: str, noqas: List[_Noqa]
) -> Iterator[Violation]:
    """RC000: bare / unknown / unjustified / unused suppressions."""
    for noqa in noqas:
        if not noqa.rules:
            yield Violation(
                path=path,
                line=noqa.line,
                column=noqa.column,
                rule="RC000",
                message=(
                    "bare suppression: name the rule(s), e.g. "
                    "`# repro: noqa[RC001] reason`"
                ),
            )
            continue
        unknown = [rule for rule in noqa.rules if rule not in RULES]
        for rule in unknown:
            yield Violation(
                path=path,
                line=noqa.line,
                column=noqa.column,
                rule="RC000",
                message=f"suppression names unknown rule {rule!r}",
            )
        if not noqa.reason:
            yield Violation(
                path=path,
                line=noqa.line,
                column=noqa.column,
                rule="RC000",
                message=(
                    "suppression missing justification: follow the "
                    "bracket with a reason, e.g. "
                    "`# repro: noqa[RC001] seed is user-supplied`"
                ),
            )
        for rule in noqa.rules:
            if rule in RULES and rule not in noqa.used:
                yield Violation(
                    path=path,
                    line=noqa.line,
                    column=noqa.column,
                    rule="RC000",
                    message=(
                        f"unused suppression: no {rule} violation on "
                        "this line"
                    ),
                )


# -- phase 1: per-file analysis -----------------------------------------


def _analyze_source(source: str, path: str, logical: Optional[str]) -> _FileRecord:
    """Parse one file, run per-file rules, extract the module index."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return _FileRecord(
            path=path,
            logical=logical or _logical_path(path),
            error=Violation(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1),
                rule="RC999",
                message=f"syntax error: {error.msg}",
            ),
        )
    directive, noqas = _scan_comments(source)
    ctx = FileContext(
        path=path,
        logical=directive or logical or _logical_path(path),
        source=source,
        tree=tree,
    )
    record = _FileRecord(path=path, logical=ctx.logical, noqas=noqas)
    for rule in RULES.values():
        if not rule.project and rule.applies(ctx):
            record.raw.extend(rule.check(ctx))
    record.index = build_module_index(
        tree=tree,
        imports=ctx.imports,
        path=path,
        logical=ctx.logical,
        module=ctx.module,
    )
    return record


# -- phase 2 + suppression merge ----------------------------------------


def _project_violations(records: Sequence[_FileRecord]) -> List[Violation]:
    repo_index = RepoIndex()
    for record in records:
        if record.index is not None:
            repo_index.add(record.index)
    if not repo_index.modules:
        return []
    project = ProjectContext(index=repo_index, graph=CallGraph(repo_index))
    violations: List[Violation] = []
    for rule in RULES.values():
        if rule.project:
            violations.extend(rule.check_project(project))
    return violations


def _finalize(records: Sequence[_FileRecord]) -> List[Violation]:
    """Merge per-file and project violations, apply noqa, emit RC000."""
    project = _project_violations(records)
    by_path: Dict[str, List[Violation]] = {}
    for violation in project:
        by_path.setdefault(violation.path, []).append(violation)
    results: List[Violation] = []
    for record in records:
        if record.error is not None:
            results.append(record.error)
            continue
        raw = list(record.raw) + by_path.pop(record.path, [])
        by_line: Dict[int, List[_Noqa]] = {}
        for noqa in record.noqas:
            noqa.used.clear()
            by_line.setdefault(noqa.line, []).append(noqa)
        for violation in raw:
            suppressed = False
            for noqa in by_line.get(violation.line, ()):
                if violation.rule in noqa.rules:
                    noqa.used.add(violation.rule)
                    suppressed = True
            if not suppressed:
                results.append(violation)
        results.extend(_suppression_violations(record.path, record.noqas))
    # Project violations for paths not in the record set (should not
    # happen, but never drop a finding silently).
    for leftovers in by_path.values():
        results.extend(leftovers)
    return sorted(results)


def check_source(
    source: str,
    path: str,
    logical: Optional[str] = None,
) -> List[Violation]:
    """Lint one source string (including the graph rules, which see a
    single-file project); returns suppression-filtered, sorted
    violations."""
    record = _analyze_source(source, path, logical)
    return _finalize([record])


def check_file(path: str) -> List[Violation]:
    """Lint one file on disk; undecodable bytes report RC999."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (UnicodeDecodeError, ValueError) as error:
        return [
            Violation(
                path=path,
                line=1,
                column=1,
                rule="RC999",
                message=f"file is not valid UTF-8: {error}",
            )
        ]
    return check_source(source, path)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files and directories into the .py files to check.

    Directories are walked recursively, skipping :data:`SKIP_DIR_NAMES`
    and hidden directories; symlinked directories are not followed, so
    a symlink cycle cannot hang the walk.  Explicitly named files are
    always included.
    """
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path, followlinks=False):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if d not in SKIP_DIR_NAMES and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


# -- the content-hash index cache ---------------------------------------

_CACHE_VERSION = 1


def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _cache_fingerprint() -> str:
    """Rule-set fingerprint: a cache from another rule set is stale."""
    return _digest(
        ",".join(sorted(RULES)).encode()
        + f":{_CACHE_VERSION}:{ANALYZER_SCHEMA_VERSION}".encode()
    )


def _load_cache(cache_path: Optional[str]) -> Dict[str, Dict[str, object]]:
    if cache_path is None or not os.path.exists(cache_path):
        return {}
    try:
        with open(cache_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("fingerprint") != _cache_fingerprint():
            return {}
        files = payload.get("files", {})
        return dict(files) if isinstance(files, dict) else {}
    except (OSError, ValueError):
        return {}


def _save_cache(
    cache_path: Optional[str], records: Sequence[_FileRecord]
) -> None:
    if cache_path is None:
        return
    files: Dict[str, Dict[str, object]] = {}
    for record in records:
        if record.error is not None or record.index is None:
            continue  # never cache failures
        files[record.path] = {
            "digest": record.digest,
            "logical": record.logical,
            "violations": [v.as_dict() for v in record.raw],
            "noqas": [
                {
                    "line": n.line,
                    "column": n.column,
                    "rules": list(n.rules),
                    "reason": n.reason,
                }
                for n in record.noqas
            ],
            "index": record.index.to_dict(),
        }
    payload = {"fingerprint": _cache_fingerprint(), "files": files}
    try:
        directory = os.path.dirname(cache_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = f"{cache_path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_path, cache_path)
    except OSError:
        pass  # a cache that cannot be written is just a slow run


def _record_from_cache(
    path: str, digest: str, entry: Dict[str, object]
) -> Optional[_FileRecord]:
    if entry.get("digest") != digest:
        return None
    try:
        record = _FileRecord(
            path=path, logical=str(entry["logical"]), digest=digest
        )
        record.raw = [
            Violation(
                path=str(v["path"]),
                line=int(v["line"]),  # type: ignore[call-overload]
                column=int(v["column"]),  # type: ignore[call-overload]
                rule=str(v["rule"]),
                message=str(v["message"]),
            )
            for v in entry["violations"]  # type: ignore[union-attr,index]
        ]
        record.noqas = [
            _Noqa(
                line=int(n["line"]),
                column=int(n["column"]),
                rules=tuple(n["rules"]),
                reason=str(n["reason"]),
            )
            for n in entry["noqas"]  # type: ignore[union-attr,index]
        ]
        record.index = ModuleIndex.from_dict(entry["index"])  # type: ignore[arg-type]
        return record
    except (KeyError, TypeError, ValueError):
        return None


def _analyze_path(path: str, cache: Dict[str, Dict[str, object]]) -> _FileRecord:
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        record = _FileRecord(path=path, logical=_logical_path(path))
        record.error = Violation(
            path=path,
            line=1,
            column=1,
            rule="RC999",
            message=f"unreadable file: {error}",
        )
        return record
    digest = _digest(data)
    entry = cache.get(path)
    if isinstance(entry, dict):
        cached = _record_from_cache(path, digest, entry)
        if cached is not None:
            return cached
    try:
        source = data.decode("utf-8")
    except UnicodeDecodeError as error:
        record = _FileRecord(path=path, logical=_logical_path(path))
        record.error = Violation(
            path=path,
            line=1,
            column=1,
            rule="RC999",
            message=f"file is not valid UTF-8: {error}",
        )
        return record
    record = _analyze_source(source, path, None)
    record.digest = digest
    return record


def check_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache_path: Optional[str] = None,
    changed_only: Optional[Set[str]] = None,
) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns (violations, files_checked).

    ``select`` keeps only the named rule ids; ``ignore`` drops them.
    ``cache_path`` points at a JSON phase-1 cache keyed on content
    hash; unchanged files skip parsing and per-file rules (the
    project-wide rules always run over the full index).
    ``changed_only`` — a set of paths (as produced by
    :func:`os.path.normpath`) — restricts *reported* violations to
    those files while still indexing everything, so graph rules keep
    whole-repo visibility during incremental runs.
    Raises ``FileNotFoundError`` for a path that does not exist.
    """
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(path)
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    cache = _load_cache(cache_path)
    records: List[_FileRecord] = []
    for file_path in iter_python_files(paths):
        records.append(_analyze_path(file_path, cache))
    _save_cache(cache_path, records)
    all_violations = _finalize(records)
    files_checked = len(records)
    if changed_only is not None:
        all_violations = [
            v
            for v in all_violations
            if os.path.normpath(v.path) in changed_only
        ]
        files_checked = sum(
            1
            for record in records
            if os.path.normpath(record.path) in changed_only
        )
    violations: List[Violation] = []
    for violation in all_violations:
        if selected is not None and violation.rule not in selected:
            continue
        if violation.rule in ignored:
            continue
        violations.append(violation)
    return sorted(violations), files_checked
