"""repro.staticcheck — the repo-aware AST linter and correctness gate.

The two bugs this repository has actually shipped and fixed —
correlated RNG streams before :mod:`repro.core.seeding` labeled child
seeds, and cache hits inflating wall-time metrics — are both
*statically detectable* classes of error.  This package turns those
lessons (and the discipline the paper's theorems demand) into
machine-checked invariants over the source itself:

* ``RC001 rng-discipline`` — all randomness flows through
  :func:`repro.core.seeding.spawn_random` / ``spawn_generator``
  labeled child streams; no bare ``random.Random(...)``, no
  module-level ``random.*`` state, no ``numpy.random.default_rng``
  outside ``core/seeding.py``;
* ``RC002 clock-discipline`` — no wall-clock or ad-hoc timer calls in
  ``engine/``, ``protocols/``, ``adversary/``; monotonic time comes
  from :func:`repro.obs.runtime.monotonic` only;
* ``RC003 float-equality`` — no ``==`` / ``!=`` against float
  literals in ``core/``, ``analysis/``, ``experiments/``; use
  ``math.isclose``, ``fractions.Fraction``, or an explicit tolerance;
* ``RC004 claim-traceability`` — every ``Theorem``/``Lemma`` tag in a
  docstring resolves against the machine-readable claims registry in
  :mod:`repro.staticcheck.claims`, and every experiment module
  declares which claim(s) it checks via a module-level ``CLAIMS``
  tuple;
* ``RC005 cache-purity`` — functions registered as engine-cacheable
  (:data:`repro.engine.engine.CACHEABLE_QUALNAMES`) must not write
  globals, mutate their arguments, or call RNG/clock APIs.

Three further rules are *project-wide*: a two-phase analyzer first
indexes every file (:mod:`repro.staticcheck.index`), then builds an
interprocedural call graph with an execution-context classification
(:mod:`repro.staticcheck.graph`) and runs

* ``RC006 async-discipline`` — no blocking calls (file/socket I/O,
  ``time.sleep``, ``subprocess``, direct ``Engine.evaluate*``)
  reachable from event-loop context in ``service/``, including
  transitively-blocking helpers;
* ``RC007 spawn-safety`` — callables and arguments crossing spawn
  ``Process``/pool boundaries must be picklable by construction, and
  module state must not straddle the boundary;
* ``RC008 shared-state`` — mutable module/class state written from
  more than one execution context must be registered in
  :data:`repro.obs.runtime.SYNCHRONIZED_QUALNAMES` (the registry
  pattern RC005 pioneered for the cache surface).

Violations can be suppressed per line with
``# repro: noqa[RC001] justification`` — the justification is
mandatory, and unused suppressions are themselves reported (``RC000``).

Run it as ``python -m repro lint src/ tests/`` (text or ``--format
json``); the same gate runs in CI.  See DESIGN.md section 9.
"""

from __future__ import annotations

from .base import RULES, FileContext, ProjectRule, Rule, Violation, all_rule_ids
from .checker import check_file, check_paths, check_source, iter_python_files
from .claims import CLAIMS, Claim, claims_for_experiment, normalize_tag, resolve
from .graph import CallGraph, ProjectContext
from .index import RepoIndex, build_module_index

# Importing the rule modules registers them in RULES.
from . import rc001_rng as _rc001  # noqa: F401  (registration import)
from . import rc002_clock as _rc002  # noqa: F401
from . import rc003_float_eq as _rc003  # noqa: F401
from . import rc004_claims as _rc004  # noqa: F401
from . import rc005_cache_purity as _rc005  # noqa: F401
from . import rc006_async_discipline as _rc006  # noqa: F401
from . import rc007_spawn_safety as _rc007  # noqa: F401
from . import rc008_shared_state as _rc008  # noqa: F401

__all__ = [
    "CLAIMS",
    "CallGraph",
    "Claim",
    "FileContext",
    "ProjectContext",
    "ProjectRule",
    "RULES",
    "RepoIndex",
    "Rule",
    "Violation",
    "all_rule_ids",
    "build_module_index",
    "check_file",
    "check_paths",
    "check_source",
    "claims_for_experiment",
    "iter_python_files",
    "normalize_tag",
    "resolve",
]
