"""repro.staticcheck — the repo-aware AST linter and correctness gate.

The two bugs this repository has actually shipped and fixed —
correlated RNG streams before :mod:`repro.core.seeding` labeled child
seeds, and cache hits inflating wall-time metrics — are both
*statically detectable* classes of error.  This package turns those
lessons (and the discipline the paper's theorems demand) into
machine-checked invariants over the source itself:

* ``RC001 rng-discipline`` — all randomness flows through
  :func:`repro.core.seeding.spawn_random` / ``spawn_generator``
  labeled child streams; no bare ``random.Random(...)``, no
  module-level ``random.*`` state, no ``numpy.random.default_rng``
  outside ``core/seeding.py``;
* ``RC002 clock-discipline`` — no wall-clock or ad-hoc timer calls in
  ``engine/``, ``protocols/``, ``adversary/``; monotonic time comes
  from :func:`repro.obs.runtime.monotonic` only;
* ``RC003 float-equality`` — no ``==`` / ``!=`` against float
  literals in ``core/``, ``analysis/``, ``experiments/``; use
  ``math.isclose``, ``fractions.Fraction``, or an explicit tolerance;
* ``RC004 claim-traceability`` — every ``Theorem``/``Lemma`` tag in a
  docstring resolves against the machine-readable claims registry in
  :mod:`repro.staticcheck.claims`, and every experiment module
  declares which claim(s) it checks via a module-level ``CLAIMS``
  tuple;
* ``RC005 cache-purity`` — functions registered as engine-cacheable
  (:data:`repro.engine.engine.CACHEABLE_QUALNAMES`) must not write
  globals, mutate their arguments, or call RNG/clock APIs.

Violations can be suppressed per line with
``# repro: noqa[RC001] justification`` — the justification is
mandatory, and unused suppressions are themselves reported (``RC000``).

Run it as ``python -m repro lint src/ tests/`` (text or ``--format
json``); the same gate runs in CI.  See DESIGN.md section 9.
"""

from __future__ import annotations

from .base import RULES, FileContext, Rule, Violation, all_rule_ids
from .checker import check_file, check_paths, check_source, iter_python_files
from .claims import CLAIMS, Claim, claims_for_experiment, normalize_tag, resolve

# Importing the rule modules registers them in RULES.
from . import rc001_rng as _rc001  # noqa: F401  (registration import)
from . import rc002_clock as _rc002  # noqa: F401
from . import rc003_float_eq as _rc003  # noqa: F401
from . import rc004_claims as _rc004  # noqa: F401
from . import rc005_cache_purity as _rc005  # noqa: F401

__all__ = [
    "CLAIMS",
    "Claim",
    "FileContext",
    "RULES",
    "Rule",
    "Violation",
    "all_rule_ids",
    "check_file",
    "check_paths",
    "check_source",
    "claims_for_experiment",
    "iter_python_files",
    "normalize_tag",
    "resolve",
]
