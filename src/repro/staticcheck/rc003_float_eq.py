"""RC003 float-equality: probabilities never compare with ``==``.

The quantities ``core/``, ``analysis/``, and ``experiments/`` pass
around are probabilities and expectations — floats produced by sums
and products whose exact bit patterns are representation accidents.
``x == 1.0`` silently couples a claim check to those accidents; the
paper-faithful comparisons are ``math.isclose`` with an explicit
tolerance, or exact ``fractions.Fraction`` arithmetic.

``service/`` and ``obs/`` are in scope too: the serving tier carries
the same probabilities over the wire (payload validation, sampling
rates, latency thresholds), and a float-literal ``==`` there couples
an HTTP contract to representation accidents just as silently.  So is
``meanfield/``: its closed forms promise bit-for-bit parity with the
reference backend, which makes accidental ``==`` against float
literals exactly as fragile as everywhere else.  The
one sanctioned shape — sampling-rate *bounds* like ``rate >= 1.0`` —
is an ordered comparison, which this rule never touches.

Detection is syntactic and conservative: an ``==`` / ``!=``
comparison is flagged when either operand is a float *literal* (the
pattern both shipped instances had).  Comparisons against integers or
strings are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, register

#: Subpackages of ``repro`` the rule scopes to.
SCOPED_SUBPACKAGES = frozenset(
    {"core", "analysis", "experiments", "meanfield", "service", "obs"}
)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEquality(Rule):
    rule_id = "RC003"
    name = "float-equality"
    summary = (
        "no ==/!= against float literals in core/, analysis/, "
        "experiments/, meanfield/, service/, obs/; use math.isclose, "
        "Fraction, or an explicit tolerance"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.subpackage in SCOPED_SUBPACKAGES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.violation(
                        ctx,
                        node,
                        "exact float comparison against a literal: use "
                        "math.isclose(..., rel_tol=..., abs_tol=...), "
                        "fractions.Fraction, or an explicit tolerance",
                    )
                    break  # one violation per comparison expression
