"""RC001 rng-discipline: all randomness flows through labeled streams.

The repository's first shipped bug was correlated RNG streams: every
call site seeded its own generator with the same root seed, so sweep
points that were supposed to be independent replayed identical
randomness.  :mod:`repro.core.seeding` fixed it with labeled child
seeds; this rule keeps it fixed by banning, everywhere under
``src/repro/`` except ``core/seeding.py`` itself:

* bare RNG construction — ``random.Random(...)``,
  ``random.SystemRandom(...)``, ``numpy.random.default_rng(...)``,
  ``numpy.random.RandomState(...)``;
* module-level RNG state — ``random.random()``, ``random.seed()``,
  ``random.choice()`` and friends, and any ``numpy.random.*`` call
  (the legacy global-state API).

``random.Random`` remains fine as a *type annotation*; only calls are
flagged.  Sanctioned entry points: ``spawn_seed`` / ``spawn_random`` /
``spawn_generator`` from :mod:`repro.core.seeding`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, register

#: Functions on the ``random`` module that read or seed the hidden
#: process-global Mersenne Twister.
_MODULE_STATE_FUNCS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})

_ADVICE = (
    "derive a labeled child stream via repro.core.seeding "
    "(spawn_random / spawn_generator) instead"
)


@register
class RngDiscipline(Rule):
    rule_id = "RC001"
    name = "rng-discipline"
    summary = (
        "no bare random.Random / numpy.random.default_rng or "
        "module-level random.* state outside core/seeding.py; use "
        "spawn_random / spawn_generator labeled streams"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_repro and ctx.logical != "src/repro/core/seeding.py"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name is None:
                continue
            if name in _CONSTRUCTORS:
                yield self.violation(
                    ctx,
                    node,
                    f"bare RNG construction `{name}(...)`: {_ADVICE}",
                )
            elif (
                name.startswith("random.")
                and name.split(".", 1)[1] in _MODULE_STATE_FUNCS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"module-level RNG state `{name}(...)` draws from "
                    f"the hidden process-global stream: {_ADVICE}",
                )
            elif name.startswith("numpy.random."):
                yield self.violation(
                    ctx,
                    node,
                    f"`{name}(...)` bypasses the labeled seeding "
                    f"discipline: {_ADVICE}",
                )
