"""`repro.service`: the asyncio evaluation server and its clients.

The serving tier turns the batch reproduction into an online system:
JSON-over-HTTP endpoints for protocol evaluation (``POST
/v1/evaluate``), experiment launches (``POST /v1/experiments/{eX}``),
and ops (``GET /healthz``, ``GET /metrics``), built from four pieces
that each do one thing:

* :mod:`~repro.service.http` — hand-rolled HTTP/1.1 on asyncio
  streams, server and client halves (zero dependencies);
* :mod:`~repro.service.batcher` — the micro-batcher that coalesces
  concurrent exact evaluations sharing a batch key into single
  :class:`~repro.engine.Engine` batch calls;
* :mod:`~repro.service.workers` — the process-pool tier for CPU-bound
  Monte-Carlo estimates and experiment runs, with per-request
  deadlines and metrics-snapshot merge-back;
* :mod:`~repro.service.server` — admission control (bounded queue,
  429 + ``Retry-After`` backpressure), routing, and graceful drain on
  SIGTERM;
* :mod:`~repro.service.sharding` — horizontal scale: N spawn-context
  engine shards behind a consistent-hash supervisor that routes on
  the batch key and merges per-shard metrics (``--shards N``).

Surfaced on the CLI as ``repro serve`` and ``repro bench-serve``; see
DESIGN.md §10 for the architecture and endpoint schemas, §11 for the
sharded deployment.
"""

from .batcher import MicroBatcher
from .config import DEFAULT_PORT, ServiceConfig
from .http import ClientConnection, HttpError, HttpRequest, request_once
from .loadgen import (
    BENCH_SCHEMA_VERSION,
    LoadgenOptions,
    LoadReport,
    percentile,
    run_bench,
    run_load,
)
from .server import AsyncJsonServer, EvaluationServer, make_server, serve
from .sharding import (
    ShardedEvaluationServer,
    ShardRing,
    routing_key,
)
from .specs import (
    EvaluateRequest,
    RequestError,
    ScaledEvaluateRequest,
    evaluate_response,
    parse_evaluate_payload,
    scaled_evaluate_response,
)
from .testing import BackgroundServer
from .workers import DeadlineExceeded, WorkerPool

__all__ = [
    "AsyncJsonServer",
    "BENCH_SCHEMA_VERSION",
    "BackgroundServer",
    "ClientConnection",
    "DEFAULT_PORT",
    "DeadlineExceeded",
    "EvaluateRequest",
    "EvaluationServer",
    "HttpError",
    "HttpRequest",
    "LoadReport",
    "LoadgenOptions",
    "MicroBatcher",
    "RequestError",
    "ScaledEvaluateRequest",
    "ServiceConfig",
    "ShardRing",
    "ShardedEvaluationServer",
    "WorkerPool",
    "evaluate_response",
    "make_server",
    "parse_evaluate_payload",
    "percentile",
    "request_once",
    "routing_key",
    "run_bench",
    "scaled_evaluate_response",
    "run_load",
    "serve",
]
