"""Sharded serving: N engine shards behind a consistent-hash router.

One asyncio process tops out well before the engine does — request
parsing, batch bookkeeping, and response serialization all contend on
a single event loop.  ``repro serve --shards N`` therefore runs N
complete :class:`~repro.service.server.EvaluationServer` processes
("shards", spawn-context so no state leaks in by fork), each owning
its private engine, memo cache, micro-batcher, admission queue, and
worker tier, behind a lightweight supervisor
(:class:`ShardedEvaluationServer`) that owns the public port.

Routing is a consistent-hash ring over the request's **batch key**:
the wire-level image of :meth:`repro.engine.engine.Engine.batch_key`
(protocol, topology, rounds, method, trials — everything but the run
and seed).  Keying the ring on the batch key, not the whole request,
is the load-bearing choice: all runs of one batch group land on one
shard, so the micro-batcher still coalesces them into single
``evaluate_many`` calls and the memo cache keeps its hit rate — a
random spray would fragment both N ways.

Clients have two ways in:

* **Proxy path** — ``POST /v1/evaluate`` on the supervisor port works
  exactly like the single-process server (curl, CI smoke, examples);
  the supervisor forwards over pooled keep-alive connections and
  relays the shard's status and ``Retry-After`` verbatim.
* **Direct path** — ``GET /shards`` publishes the routing table
  (ports + algorithm); a smart client (the load generator) hashes
  locally and talks straight to the shards, taking the supervisor
  hop off the hot path entirely.

``GET /metrics`` on the supervisor scrapes every shard and merges the
snapshots into one fresh :class:`~repro.obs.MetricsRegistry` (plus a
``per_shard`` breakdown), so one scrape still tells the whole story.
``GET /healthz`` fans out similarly.  SIGTERM drains end-to-end: the
supervisor drains its own proxied requests, then forwards SIGTERM to
every shard and waits for their drains — no admitted request on any
shard loses its response (see DESIGN.md §11).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import logging
import multiprocessing
import os
import signal
from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from multiprocessing.connection import Connection

from ..core.probability import DEFAULT_TRIALS
from ..obs import MetricsRegistry, Obs
from ..obs.audit import ADMISSION_STAGE, PROXY_STAGE, ROUTE_STAGE
from ..obs.runtime import monotonic, setup_logging
from .config import ServiceConfig
from .http import ClientConnection, HttpError, HttpRequest
from .server import (
    RETRY_AFTER_SECONDS,
    AsyncJsonServer,
    EvaluationServer,
    Route,
)
from .workers import DeadlineExceeded

logger = logging.getLogger(__name__)

#: Virtual nodes per shard on the hash ring: enough that the keyspace
#: splits within a few percent of evenly for small shard counts.
VIRTUAL_NODES = 64

#: Seconds the supervisor waits for a shard to report readiness.
SHARD_STARTUP_TIMEOUT_S = 60.0

#: Extra seconds the proxy allows past the shard's own deadline before
#: giving up on it (the shard answers 504 first in the normal case).
PROXY_DEADLINE_GRACE_S = 5.0

#: Payload fields that form the routing key — the wire-level image of
#: ``Engine.batch_key``: run and seed are deliberately absent so every
#: run of a batch group lands on the same shard.
ROUTED_FIELDS = ("protocol", "topology", "rounds", "method", "trials")

#: Wire defaults for the routed fields, kept in sync with
#: ``specs.parse_evaluate_payload`` so an omitted field routes exactly
#: like its explicit default.
_ROUTED_DEFAULTS: Dict[str, Any] = {
    "protocol": "S",
    "topology": "pair",
    "rounds": 8,
    "method": "auto",
    "trials": DEFAULT_TRIALS,
}


def routing_key(payload: Mapping[str, Any]) -> bytes:
    """The consistent-hash key for one ``/v1/evaluate`` wire payload.

    Canonical JSON over the :data:`ROUTED_FIELDS`, with wire defaults
    filled in — deterministic across processes (unlike ``hash()``,
    which is salted per process), so the load generator's worker
    processes and the supervisor agree on every placement.
    """
    components = {
        name: payload.get(name, _ROUTED_DEFAULTS[name])
        for name in ROUTED_FIELDS
    }
    return json.dumps(
        components, sort_keys=True, separators=(",", ":"), default=repr
    ).encode("utf-8")


class ShardRing:
    """A consistent-hash ring mapping routing keys to shard indices.

    blake2b over ``VIRTUAL_NODES`` virtual points per shard; a key is
    owned by the first point clockwise from its hash.  Deterministic
    given ``shard_count``, so any process can rebuild the identical
    ring from the ``/shards`` routing table alone.
    """

    def __init__(self, shard_count: int, replicas: int = VIRTUAL_NODES) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_count = shard_count
        points: List[Tuple[int, int]] = []
        for shard in range(shard_count):
            for replica in range(replicas):
                label = f"shard-{shard}:{replica}".encode("ascii")
                points.append((self._hash(label), shard))
        points.sort()
        self._hashes = [point[0] for point in points]
        self._owners = [point[1] for point in points]

    @staticmethod
    def _hash(data: bytes) -> int:
        return int.from_bytes(
            hashlib.blake2b(data, digest_size=8).digest(), "big"
        )

    def shard_for(self, key: bytes) -> int:
        """The shard index owning ``key``."""
        index = bisect.bisect_right(self._hashes, self._hash(key))
        return self._owners[index % len(self._owners)]


def shard_config(config: ServiceConfig, index: int) -> ServiceConfig:
    """The child config for shard ``index``.

    Ephemeral port (the supervisor learns the bound port from the
    readiness message), ``shards=1`` (no nesting), ``debug`` inherited
    (the drain tests drive ``/v1/_sleep`` on shards directly), and
    artifact paths suffixed per shard so exports never collide.
    """
    return replace(
        config,
        port=0,
        shards=1,
        trace_path=_suffixed(config.trace_path, index),
        metrics_path=_suffixed(config.metrics_path, index),
    )


def _suffixed(path: Optional[str], index: int) -> Optional[str]:
    if path is None:
        return None
    root, extension = os.path.splitext(path)
    return f"{root}-shard{index}{extension}"


def _shard_entry(
    config: ServiceConfig, shard_index: int, ready: Connection
) -> None:
    """The spawn-context entry point of one shard process.

    A spawned child starts with no logging configuration, so the
    supervisor's ``--log-level`` is re-applied here (it rode in on the
    shard's config) and every line is prefixed with the shard index.
    """
    setup_logging(config.log_level, prefix=f"shard={shard_index} ")
    asyncio.run(_shard_main(config, shard_index, ready))


async def _shard_main(
    config: ServiceConfig, shard_index: int, ready: Connection
) -> None:
    server = EvaluationServer(config, shard_index=shard_index)
    try:
        await server.start()
    except Exception as error:
        ready.send(("error", f"{type(error).__name__}: {error}"))
        ready.close()
        return
    server.install_signal_handlers()
    ready.send(("ready", server.port))
    ready.close()
    await server.serve_until_shutdown()


class ShardManager:
    """Owns the shard processes: spawn, readiness, SIGTERM, reap."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.ports: List[int] = []
        self._processes: List[Any] = []

    def start(self) -> List[int]:
        """Spawn every shard and block until all report readiness.

        On any failure the already-started shards are terminated
        before the error propagates — no orphaned processes.
        """
        context = multiprocessing.get_context("spawn")
        receivers: List[Connection] = []
        try:
            for index in range(self.config.shards):
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_shard_entry,
                    args=(shard_config(self.config, index), index, sender),
                    name=f"repro-shard-{index}",
                )
                process.start()
                sender.close()
                self._processes.append(process)
                receivers.append(receiver)
            for index, receiver in enumerate(receivers):
                if not receiver.poll(SHARD_STARTUP_TIMEOUT_S):
                    raise RuntimeError(
                        f"shard {index} did not report readiness within "
                        f"{SHARD_STARTUP_TIMEOUT_S:.0f}s"
                    )
                kind, value = receiver.recv()
                if kind != "ready":
                    raise RuntimeError(f"shard {index} failed to start: {value}")
                self.ports.append(int(value))
        except BaseException:
            self.terminate()
            raise
        finally:
            for receiver in receivers:
                receiver.close()
        return self.ports

    def signal_shutdown(self) -> None:
        """Forward SIGTERM to every live shard (starts their drains)."""
        for process in self._processes:
            if process.is_alive() and process.pid is not None:
                os.kill(process.pid, signal.SIGTERM)

    def join(self, timeout_s: float) -> None:
        """Wait up to ``timeout_s`` for shards to exit, then reap."""
        deadline = monotonic() + timeout_s
        for process in self._processes:
            process.join(max(0.0, deadline - monotonic()))
        self.terminate()

    def terminate(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(1.0)
        self._processes = []

    @property
    def alive_count(self) -> int:
        return sum(1 for process in self._processes if process.is_alive())


class _ShardClient:
    """A small keep-alive connection pool to one shard.

    Connections are parked between proxied requests and reused; a
    parked connection the shard has since closed gets one transparent
    retry on a fresh connection.  ``limit`` bounds concurrent proxied
    requests per shard (beyond it, callers queue on the semaphore —
    the shard's own admission control is the real backpressure).
    """

    def __init__(self, host: str, port: int, limit: int = 32) -> None:
        self.host = host
        self.port = port
        self._idle: List[ClientConnection] = []
        self._gate = asyncio.Semaphore(limit)
        self._closed = False

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        async with self._gate:
            connection = self._idle.pop() if self._idle else None
            reused = connection is not None
            if connection is None:
                connection = await ClientConnection.open(self.host, self.port)
            try:
                result = await connection.request(method, path, payload, headers)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                await connection.close()
                if not reused:
                    raise
                # A parked keep-alive connection the shard closed
                # between requests: retry once on a fresh one.
                connection = await ClientConnection.open(self.host, self.port)
                try:
                    result = await connection.request(
                        method, path, payload, headers
                    )
                except BaseException:
                    await connection.close()
                    raise
            except BaseException:
                await connection.close()
                raise
            _, headers, _ = result
            if self._closed or headers.get("connection", "").lower() == "close":
                await connection.close()
            else:
                self._idle.append(connection)
            return result

    async def close(self) -> None:
        self._closed = True
        while self._idle:
            await self._idle.pop().close()


class ShardedEvaluationServer(AsyncJsonServer):
    """The supervisor: public port, hash routing, merged observability.

    Inherits the whole connection/drain machinery from
    :class:`AsyncJsonServer`; its ``_route`` proxies instead of
    evaluating.  Every proxied request is tracked in the supervisor's
    own in-flight set, so its drain completes only after every relayed
    response has been written — then SIGTERM propagates to the shards
    for their own drains.
    """

    def __init__(self, config: ServiceConfig, obs: Optional[Obs] = None) -> None:
        if config.shards < 2:
            raise ValueError(
                "ShardedEvaluationServer requires shards >= 2; use "
                "EvaluationServer for a single shard"
            )
        super().__init__(config, obs, process_name="supervisor")
        self.manager = ShardManager(config)
        self.ring = ShardRing(config.shards)
        self._clients: List[_ShardClient] = []
        self._round_robin = 0
        self.metrics.gauge("service.shards").set(config.shards)
        self._proxied_counters = [
            self.metrics.counter(f"service.proxy.shard.{index}.requests")
            for index in range(config.shards)
        ]

    # -- lifecycle -----------------------------------------------------

    async def _start_components(self) -> None:
        loop = asyncio.get_running_loop()
        ports = await loop.run_in_executor(None, self.manager.start)
        self._clients = [
            _ShardClient(self.config.host, port) for port in ports
        ]

    def _log_started(self) -> None:
        logger.info(
            "supervising %d shards on http://%s:%d (shard ports: %s)",
            self.config.shards,
            self.config.host,
            self.port,
            ", ".join(str(port) for port in self.manager.ports),
        )

    async def _shutdown_components(self) -> None:
        for client in self._clients:
            await client.close()
        self.manager.signal_shutdown()
        loop = asyncio.get_running_loop()
        timeout_s = self.config.drain_timeout_s + PROXY_DEADLINE_GRACE_S
        await loop.run_in_executor(None, self.manager.join, timeout_s)
        logger.info("all shards drained and reaped")

    # -- routing -------------------------------------------------------

    async def _route(self, request: HttpRequest) -> Route:
        path = request.path.split("?", 1)[0]
        if path == "/healthz":
            self._expect_method(request, "GET")
            return await self._handle_health()
        if path == "/metrics":
            self._expect_method(request, "GET")
            return await self._handle_metrics()
        if path == "/shards":
            self._expect_method(request, "GET")
            return self._handle_shards()
        if path == "/v1/debug/requests":
            self._expect_method(request, "GET")
            return await self._handle_debug_requests(request)
        if path == "/v1/evaluate":
            self._expect_method(request, "POST")
            shard = self.ring.shard_for(routing_key(request.json()))
            self._record_route(request, shard, "consistent-hash")
            return await self._proxy(shard, request)
        if path.startswith("/v1/experiments/") or (
            path == "/v1/_sleep" and self.config.debug
        ):
            self._expect_method(request, "POST")
            # Run-of-the-mill load balancing: experiments and the debug
            # sleep hook have no batch locality to preserve.
            shard = self._round_robin % len(self._clients)
            self._round_robin += 1
            self._record_route(request, shard, "round-robin")
            return await self._proxy(shard, request)
        raise HttpError(404, f"no route for {path!r}")

    def _record_route(
        self, request: HttpRequest, shard: int, policy: str
    ) -> None:
        trace = request.trace
        if trace is None or not trace.sampled:
            return
        self.audit.record(
            ROUTE_STAGE, trace.request_id, 0.0, shard=shard, policy=policy
        )

    async def _proxy(self, shard: int, request: HttpRequest) -> Route:
        self._refuse_if_draining()
        payload = request.json()
        trace = request.trace
        sampled = trace is not None and trace.sampled
        # The forward re-asserts the trace identity (and pins the
        # sampling verdict) so the shard joins the same request tree
        # instead of minting a fresh id for the hop.
        propagation = (
            trace.propagation_headers() if trace is not None else None
        )
        if sampled:
            assert trace is not None
            self.audit.record(
                ADMISSION_STAGE,
                trace.request_id,
                0.0,
                admitted=True,
                inflight=self._inflight,
                proxied_to=shard,
            )
        self._proxied_counters[shard].inc()
        self._enter_inflight()
        started = monotonic()
        outcome: Any = None
        try:
            status, headers, body = await asyncio.wait_for(
                self._clients[shard].request(
                    request.method,
                    request.path,
                    payload,
                    headers=propagation,
                ),
                timeout=self.config.deadline_s + PROXY_DEADLINE_GRACE_S,
            )
            outcome = status
        except asyncio.TimeoutError as error:
            outcome = "proxy-deadline"
            raise DeadlineExceeded(
                f"shard {shard} exceeded the proxy deadline"
            ) from error
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
            outcome = "unreachable"
            raise HttpError(
                503,
                f"shard {shard} unreachable: {error}",
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            ) from error
        finally:
            self._leave_inflight()
            if sampled:
                assert trace is not None
                self.audit.record(
                    PROXY_STAGE,
                    trace.request_id,
                    monotonic() - started,
                    shard=shard,
                    status=outcome,
                )
        relayed: Dict[str, str] = {}
        if "retry-after" in headers:
            relayed["Retry-After"] = headers["retry-after"]
        return status, body, relayed

    # -- ops endpoints -------------------------------------------------

    async def _handle_health(self) -> Route:
        outcomes = await asyncio.gather(
            *(client.request("GET", "/healthz") for client in self._clients),
            return_exceptions=True,
        )
        status = "draining" if self._draining else "ok"
        shards: List[Dict[str, Any]] = []
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                shards.append(
                    {
                        "shard": index,
                        "port": self.manager.ports[index],
                        "status": "unreachable",
                    }
                )
                if status == "ok":
                    status = "degraded"
                continue
            _, _, body = outcome
            entry = dict(body)
            entry.setdefault("shard", index)
            entry["port"] = self.manager.ports[index]
            shards.append(entry)
        payload: Dict[str, Any] = {
            "status": status,
            "inflight": self._inflight,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "backend": self.config.backend,
            "shards": shards,
        }
        return 200, payload, {}

    async def _handle_metrics(self) -> Route:
        # A fresh registry per scrape: shard counters are cumulative,
        # so merging into a persistent registry would double-count on
        # the second scrape.
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        per_shard: Dict[str, Any] = {}
        outcomes = await asyncio.gather(
            *(client.request("GET", "/metrics") for client in self._clients),
            return_exceptions=True,
        )
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                continue
            _, _, body = outcome
            snapshot = body.get("metrics", {})
            per_shard[str(index)] = snapshot
            merged.merge(snapshot)
        return (
            200,
            {
                "schema_version": 1,
                "metrics": merged.snapshot(),
                "per_shard": per_shard,
            },
            {},
        )

    async def _handle_debug_requests(self, request: HttpRequest) -> Route:
        """The supervisor's recent-request ring plus every shard's.

        One endpoint answers for the whole deployment: the payload is
        the supervisor's own view with a ``shards`` map of each
        shard's recent audit records fanned in (unreachable shards
        are simply absent, mirroring ``/healthz``).
        """
        payload = self._debug_requests_payload(request)
        outcomes = await asyncio.gather(
            *(
                client.request("GET", request.path)
                for client in self._clients
            ),
            return_exceptions=True,
        )
        shards: Dict[str, Any] = {}
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                continue
            _, _, body = outcome
            shards[str(index)] = body.get("requests", [])
        payload["shards"] = shards
        return 200, payload, {}

    def _handle_shards(self) -> Route:
        """The routing table a smart client needs to bypass the proxy."""
        payload: Dict[str, Any] = {
            "shards": [
                {"shard": index, "host": self.config.host, "port": port}
                for index, port in enumerate(self.manager.ports)
            ],
            "routing": {
                "fields": list(ROUTED_FIELDS),
                "algorithm": "blake2b-ring",
                "replicas": VIRTUAL_NODES,
            },
        }
        return 200, payload, {}
