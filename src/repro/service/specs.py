"""Request/response schemas for the evaluation endpoints.

``POST /v1/evaluate`` accepts the same specification mini-language the
CLI uses (``--protocol`` / ``--topology`` / ``--run``), by calling the
CLI's own parsers — so a served evaluation and a ``repro simulate``
invocation are the same computation by construction, and the parity
test only has to pin that they stay that way.

The response reports the paper's two measures for the run — unsafety
``Pr[PA | R]`` and liveness ``L(F, R) = Pr[TA | R]`` — alongside the
information levels ``L(R)`` / ``ML(R)`` of the run, and, for
Protocol S, the Theorem 6.8 liveness floor ``min(1, eps * ML(R))``
those theorems relate the measures to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from ..core.measures import level_profile, modified_level_profile
from ..core.probability import (
    DEFAULT_ENUMERATION_LIMIT,
    DEFAULT_TRIALS,
    EventProbabilities,
)
from ..core.protocol import ClosedFormProtocol, Protocol
from ..core.run import Run
from ..core.topology import Topology
from ..meanfield.counter import CounterRunSpec
from ..meanfield.evaluate import CounterEvaluation, scaled_spec
from ..protocols.protocol_m import ProtocolM
from ..protocols.protocol_s import ProtocolS
from ..protocols.weak_adversary import ProtocolW

METHODS = ("auto", "closed-form", "enumeration", "monte-carlo")

#: Per-request backends the wire accepts.  ``auto`` defers to the
#: server's configured backend; ``meanfield`` selects the scaled
#: counter-abstraction path (the only way to ask for ``m = 10**6`` —
#: the concrete paths would have to materialize the graph).
#: ``reference``/``vectorized`` are deliberately not per-request
#: choices: they are bit-identical, so picking between them is a
#: server deployment decision (``repro serve --backend``).
REQUEST_BACKENDS = ("auto", "meanfield")


class RequestError(ValueError):
    """A malformed evaluation request (answered with HTTP 400)."""


@dataclass(frozen=True)
class EvaluateRequest:
    """One validated evaluation request, parsed objects included.

    ``payload`` keeps the normalized wire form so the request can be
    shipped to a worker process (plain dict, picklable) and re-parsed
    there; the parsed objects serve the in-process paths.
    """

    protocol_spec: str
    topology_spec: str
    run_spec: str
    rounds: int
    method: str
    trials: int
    seed: int
    protocol: Protocol
    topology: Topology
    run: Run

    @property
    def payload(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol_spec,
            "topology": self.topology_spec,
            "run": self.run_spec,
            "rounds": self.rounds,
            "method": self.method,
            "trials": self.trials,
            "seed": self.seed,
        }

    def resolves_exact(
        self, enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT
    ) -> bool:
        """Whether evaluation lands on an exact (cacheable) backend.

        Mirrors :func:`repro.core.probability.evaluate`'s method
        resolution: exact results may be coalesced and cached, Monte
        Carlo estimates must go to the worker tier with their own
        labeled rng stream.
        """
        if self.method == "monte-carlo":
            return False
        if self.method in ("closed-form", "enumeration"):
            return True
        if isinstance(self.protocol, ClosedFormProtocol):
            return True
        size = self.protocol.tape_space(self.topology).joint_support_size()
        return size is not None and size <= enumeration_limit


@dataclass(frozen=True)
class ScaledEvaluateRequest:
    """A large-``m`` counter-abstraction request (``backend: meanfield``).

    No :class:`~repro.core.topology.Topology` or
    :class:`~repro.core.run.Run` is ever materialized — at
    ``m = 10**6`` the complete graph alone would hold ``~5 * 10**11``
    edges — only the parametric
    :class:`~repro.meanfield.counter.CounterRunSpec`.  Evaluation is
    ``O(rounds * classes**2)``, so the server answers these inline
    (off-loop), bypassing both the micro-batcher and the worker tier.
    """

    protocol_spec: str
    num_processes: int
    run_spec: str
    rounds: int
    protocol: Protocol
    spec: CounterRunSpec

    @property
    def payload(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol_spec,
            "topology": f"complete:{self.num_processes}",
            "run": self.run_spec,
            "rounds": self.rounds,
            "backend": "meanfield",
        }


def _parse_scaled_payload(
    payload: Dict[str, Any],
    protocol_spec: str,
    topology_spec: str,
    run_spec: str,
    rounds: int,
    method: str,
) -> ScaledEvaluateRequest:
    """The ``backend: meanfield`` arm of :func:`parse_evaluate_payload`."""
    if method not in ("auto", "closed-form"):
        raise RequestError(
            f"backend 'meanfield' is exact; method {method!r} is not "
            "available on the counter path (drop the field or use "
            "'closed-form')"
        )
    name, _, argument = topology_spec.partition(":")
    if name != "complete" or not argument:
        raise RequestError(
            "backend 'meanfield' requires topology 'complete:M' "
            f"(counter abstraction needs K_m), got {topology_spec!r}"
        )
    try:
        num_processes = int(argument)
    except ValueError as error:
        raise RequestError(
            f"bad process count in topology {topology_spec!r}: {error}"
        ) from error
    from ..cli import parse_protocol

    try:
        protocol = parse_protocol(protocol_spec, rounds)
    except ValueError as error:
        raise RequestError(str(error)) from error
    if type(protocol) not in (ProtocolS, ProtocolW, ProtocolM):
        raise RequestError(
            f"backend 'meanfield' has no counter kernel for protocol "
            f"{protocol.name!r}; supported: S, W, M"
        )
    try:
        spec = scaled_spec(
            num_processes,
            rounds,
            run_spec,
            distinguished=type(protocol) is ProtocolS,
        )
    except ValueError as error:
        raise RequestError(
            f"backend 'meanfield' run spec {run_spec!r}: {error}"
        ) from error
    return ScaledEvaluateRequest(
        protocol_spec=protocol_spec,
        num_processes=num_processes,
        run_spec=run_spec,
        rounds=rounds,
        protocol=protocol,
        spec=spec,
    )


def _field(payload: Dict[str, Any], name: str, kind: type, default: Any) -> Any:
    value = payload.get(name, default)
    if kind is int and isinstance(value, bool):
        raise RequestError(f"field {name!r} must be an integer")
    if not isinstance(value, kind):
        raise RequestError(
            f"field {name!r} must be a {kind.__name__}, got "
            f"{type(value).__name__}"
        )
    return value


def parse_evaluate_payload(
    payload: Dict[str, Any]
) -> Union[EvaluateRequest, ScaledEvaluateRequest]:
    """Validate and parse one ``/v1/evaluate`` body.

    Raises :class:`RequestError` with a client-actionable message for
    anything malformed: unknown fields, bad types, or specs the CLI
    mini-language rejects.  A ``backend: "meanfield"`` field selects
    the scaled counter-abstraction path and yields a
    :class:`ScaledEvaluateRequest` instead.
    """
    known = {
        "protocol",
        "topology",
        "run",
        "rounds",
        "method",
        "trials",
        "seed",
        "backend",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestError(
            f"unknown fields {unknown}; expected a subset of {sorted(known)}"
        )
    protocol_spec = _field(payload, "protocol", str, "S")
    topology_spec = _field(payload, "topology", str, "pair")
    run_spec = _field(payload, "run", str, "good")
    rounds = _field(payload, "rounds", int, 8)
    method = _field(payload, "method", str, "auto")
    trials = _field(payload, "trials", int, DEFAULT_TRIALS)
    seed = _field(payload, "seed", int, 0)
    backend = _field(payload, "backend", str, "auto")
    if rounds < 1:
        raise RequestError(f"rounds must be >= 1, got {rounds}")
    if trials < 1:
        raise RequestError(f"trials must be >= 1, got {trials}")
    if method not in METHODS:
        raise RequestError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
    if backend not in REQUEST_BACKENDS:
        raise RequestError(
            f"unknown backend {backend!r}; expected one of "
            f"{REQUEST_BACKENDS} (reference/vectorized are server "
            "deployment choices, see `repro serve --backend`)"
        )
    if backend == "meanfield":
        return _parse_scaled_payload(
            payload, protocol_spec, topology_spec, run_spec, rounds, method
        )
    # The CLI's parsers are the single source of truth for the
    # mini-language; SpecError subclasses ValueError, so both spec and
    # structural failures surface as RequestError to the HTTP layer.
    from ..cli import parse_protocol, parse_run, parse_topology

    try:
        topology = parse_topology(topology_spec)
        protocol = parse_protocol(protocol_spec, rounds)
        run = parse_run(run_spec, topology, rounds)
    except ValueError as error:
        raise RequestError(str(error)) from error
    return EvaluateRequest(
        protocol_spec=protocol_spec,
        topology_spec=topology_spec,
        run_spec=run_spec,
        rounds=rounds,
        method=method,
        trials=trials,
        seed=seed,
        protocol=protocol,
        topology=topology,
        run=run,
    )


def evaluate_response(
    request: EvaluateRequest, result: EventProbabilities
) -> Dict[str, Any]:
    """The JSON body served for one evaluated request."""
    levels = level_profile(request.run, request.topology.num_processes)
    mlevels = modified_level_profile(
        request.run, request.topology.num_processes
    )
    level = levels.run_level()
    modified_level = mlevels.run_level()
    response: Dict[str, Any] = {
        "protocol": request.protocol.name,
        "topology": request.topology.describe(),
        "run": request.run.describe(),
        "rounds": request.rounds,
        "method": result.method,
        "unsafety": result.pr_partial_attack,
        "liveness": result.pr_total_attack,
        "pr_no_attack": result.pr_no_attack,
        "pr_attack": list(result.pr_attack),
        "level": level,
        "modified_level": modified_level,
    }
    if result.trials is not None:
        response["trials"] = result.trials
    if isinstance(request.protocol, ProtocolS):
        # Theorem 6.8's floor on served liveness, reported next to the
        # measured value so clients can check the tradeoff per query.
        response["epsilon"] = request.protocol.epsilon
        response["liveness_lower_bound"] = min(
            1.0, request.protocol.epsilon * modified_level
        )
    return response


def scaled_evaluate_response(
    request: ScaledEvaluateRequest, evaluation: CounterEvaluation
) -> Dict[str, Any]:
    """The JSON body for one scaled (counter-abstraction) request.

    Per-process quantities come back per *class* — a million-entry
    ``pr_attack`` array would defeat the point of never materializing
    the graph — with ``class_sizes`` carrying the occupancies.
    """
    response: Dict[str, Any] = {
        "protocol": request.protocol.name,
        "topology": f"complete:{request.num_processes}",
        "run": request.run_spec,
        "rounds": request.rounds,
        "method": evaluation.method,
        "backend": "meanfield",
        "num_processes": evaluation.num_processes,
        "unsafety": evaluation.pr_partial_attack,
        "liveness": evaluation.pr_total_attack,
        "pr_no_attack": evaluation.pr_no_attack,
        "class_sizes": list(evaluation.class_sizes),
        "pr_attack_by_class": list(evaluation.pr_attack_by_class),
        "level": evaluation.level,
        "modified_level": evaluation.modified_level,
    }
    if isinstance(request.protocol, ProtocolS):
        response["epsilon"] = request.protocol.epsilon
        if evaluation.modified_level is not None:
            response["liveness_lower_bound"] = min(
                1.0, request.protocol.epsilon * evaluation.modified_level
            )
    return response
