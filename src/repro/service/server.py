"""The evaluation server: admission control, routing, graceful drain.

Request lifecycle::

    accept -> parse HTTP -> admit (bounded queue, 429 on overflow)
           -> route:
                exact evaluation  -> micro-batcher -> engine thread
                Monte Carlo / experiment -> worker tier (process pool)
           -> respond (JSON), keep-alive

Backpressure is admission-based rather than socket-based: at most
``queue_limit`` evaluations are in flight at once, and the next one is
answered ``429 Too Many Requests`` with a ``Retry-After`` hint
immediately — a cheap rejection the client can act on beats an
unbounded queue that turns overload into timeouts for everyone.

Shutdown (SIGTERM/SIGINT under ``repro serve``, or
:meth:`EvaluationServer.request_shutdown`) drains gracefully: stop
accepting connections, answer ``503`` to anything new on live
keep-alive connections, wait up to ``drain_timeout_s`` for in-flight
requests to finish (no admitted request loses its response), then
close idle connections, flush the batcher, stop the worker tier, and
export the ``--trace`` / ``--metrics`` artifacts if configured.

The connection-handling machinery lives in :class:`AsyncJsonServer`,
shared with the shard supervisor of :mod:`repro.service.sharding` —
``repro serve --shards N`` runs N of these servers as spawn-context
processes behind one supervisor, each with its own engine and cache
(see DESIGN.md §11).

Ops endpoints: ``GET /healthz`` (liveness + queue state) and ``GET
/metrics`` (the :class:`~repro.obs.MetricsRegistry` JSON export,
schema documented in DESIGN.md §8 — the same payload ``--metrics``
writes, so one validator covers both).
"""

from __future__ import annotations

import asyncio
import logging
import pathlib
import signal
from typing import Any, Dict, Optional, Tuple

from ..engine import Engine, ShardLocalCache
from ..obs import Histogram, MetricsRegistry, Obs, Tracer
from ..obs.audit import (
    ADMISSION_STAGE,
    AUDIT_SCHEMA_VERSION,
    ENGINE_STAGE,
    REQUEST_ID_HEADER,
    RESPONSE_STAGE,
    WORKER_STAGE,
    AuditLogger,
    TraceContext,
    audit_log_path,
    current_batch_id,
)
from ..obs.runtime import monotonic
from .batcher import MicroBatcher
from .config import ServiceConfig
from .http import HttpError, HttpRequest, read_request, render_response
from ..meanfield.evaluate import evaluate_spec
from .specs import (
    RequestError,
    ScaledEvaluateRequest,
    parse_evaluate_payload,
    scaled_evaluate_response,
)
from .specs import evaluate_response as build_evaluate_response
from .workers import (
    DeadlineExceeded,
    WorkerPool,
    evaluate_in_worker,
    run_experiment_in_worker,
)

logger = logging.getLogger(__name__)

#: Seconds a 429/503 response suggests the client wait before retrying.
RETRY_AFTER_SECONDS = 1

#: Deadline-burn histogram buckets (elapsed / deadline): a request in
#: the 1.0+ buckets blew its deadline; 0.75+ is the worry zone.
DEADLINE_BURN_BUCKETS: Tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    0.75,
    0.9,
    1.0,
    2.0,
)

Route = Tuple[int, Dict[str, Any], Dict[str, str]]


def _endpoint_name(path: str) -> str:
    """A bounded metric label for one request path.

    Raw paths would mint one histogram per experiment id (or per
    attacker-chosen 404 target); a fixed endpoint vocabulary keeps
    the per-endpoint latency metrics enumerable.
    """
    path = path.split("?", 1)[0]
    if path == "/v1/evaluate":
        return "evaluate"
    if path.startswith("/v1/experiments/"):
        return "experiments"
    if path == "/healthz":
        return "healthz"
    if path == "/metrics":
        return "metrics"
    if path == "/shards":
        return "shards"
    if path == "/v1/debug/requests":
        return "debug_requests"
    if path == "/v1/_sleep":
        return "sleep"
    return "other"


def _query_int(path: str, name: str, default: int) -> int:
    """``?name=N`` from a request target, tolerant of junk."""
    query = path.partition("?")[2]
    for part in query.split("&"):
        key, separator, value = part.partition("=")
        if separator and key == name:
            try:
                return max(0, int(value))
            except ValueError:
                return default
    return default


class AsyncJsonServer:
    """Shared asyncio HTTP machinery: accept, parse, route, drain.

    Subclasses implement :meth:`_route` (and optionally the
    :meth:`_shutdown_components` hook, called after in-flight requests
    drained).  Everything else — keep-alive connection loops, request
    accounting, 5xx shielding, the idle/draining bookkeeping the
    graceful-shutdown path relies on — is identical between the
    single-process evaluation server and the shard supervisor, so it
    lives here once.
    """

    def __init__(
        self,
        config: ServiceConfig,
        obs: Optional[Obs],
        process_name: str = "server",
    ) -> None:
        self.config = config
        if obs is None:
            obs = Obs(
                metrics=MetricsRegistry(),
                tracer=Tracer(enabled=config.trace_path is not None),
            )
        self.obs = obs
        self.metrics = obs.metrics
        self.process_name = process_name
        self.audit = AuditLogger(
            path=(
                audit_log_path(config.audit_dir, process_name)
                if config.audit_dir
                else None
            ),
            process=process_name,
            max_bytes=config.audit_max_bytes,
            ring_size=config.audit_ring,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.Task[None]]" = set()
        self._inflight = 0
        self._draining = False
        self._idle: Optional[asyncio.Event] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._requests_counter = self.metrics.counter("service.requests_total")
        self._rejected_counter = self.metrics.counter("service.rejected_total")
        self._responses: Dict[str, Any] = {
            klass: self.metrics.counter(f"service.responses.{klass}")
            for klass in ("2xx", "4xx", "5xx")
        }
        self._latency_histogram = self.metrics.histogram(
            "service.request.latency"
        )
        self._endpoint_histograms: Dict[str, Histogram] = {}
        self._deadline_burn_gauge = self.metrics.gauge(
            "service.deadline.burn"
        )
        self._deadline_burn_histogram = self.metrics.histogram(
            "service.deadline.burn_ratio", DEADLINE_BURN_BUCKETS
        )
        self._slow_counter = self.metrics.counter(
            "service.slow_requests_total"
        )
        self._inflight_gauge = self.metrics.gauge("service.inflight")
        self._inflight_gauge.set(0)

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        port: int = self._server.sockets[0].getsockname()[1]
        return port

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown_requested = asyncio.Event()
        await self._start_components()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._log_started()

    async def _start_components(self) -> None:
        """Hook: bring up subclass-owned resources before binding."""

    def _log_started(self) -> None:
        logger.info("serving on http://%s:%d", self.config.host, self.port)

    def request_shutdown(self) -> None:
        """Signal-safe: ask the serve loop to drain and exit."""
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                # Non-main thread or unsupported platform: the caller
                # falls back to request_shutdown() directly.
                return

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown`, then drain and stop."""
        if self._server is None:
            await self.start()
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, release resources."""
        if self._server is None:
            return
        logger.info("shutdown: draining %d in-flight requests", self._inflight)
        started = monotonic()
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        assert self._idle is not None
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            logger.warning(
                "drain timeout after %.1fs with %d requests in flight",
                self.config.drain_timeout_s,
                self._inflight,
            )
        # In-flight requests have answered (or timed out); now close
        # idle keep-alive connections still parked in read_request.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self._shutdown_components()
        self._server = None
        self.metrics.gauge("service.drain.seconds").set(monotonic() - started)
        await asyncio.get_running_loop().run_in_executor(
            None, self._export_artifacts
        )
        # Stop the audit writer last: every record from the drain above
        # must be on disk before the process exits (the CI smoke test
        # runs `repro audit --expect-complete` against these files
        # after SIGTERM).
        self.audit.close()
        logger.info("shutdown complete")

    async def _shutdown_components(self) -> None:
        """Hook: tear down subclass-owned resources after the drain."""

    def _export_artifacts(self) -> None:
        if self.config.trace_path:
            self.obs.tracer.export_jsonl(self.config.trace_path)
            logger.info("trace written to %s", self.config.trace_path)
        if self.config.metrics_path:
            self.metrics.export_json(self.config.metrics_path)
            logger.info("metrics written to %s", self.config.metrics_path)

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # drain closing an idle connection
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(
                    reader, self.config.max_body_bytes
                )
            except HttpError as error:
                writer.write(
                    render_response(
                        error.status,
                        {"error": error.message},
                        keep_alive=False,
                        extra_headers=error.headers,
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            status, payload, headers = await self._route_safely(request)
            keep_alive = (
                request.keep_alive and not self._draining and status < 500
            )
            writer.write(
                render_response(
                    status, payload, keep_alive=keep_alive, extra_headers=headers
                )
            )
            await writer.drain()
            if not keep_alive:
                return

    async def _route_safely(self, request: HttpRequest) -> Route:
        self._requests_counter.inc()
        if request.trace is None:
            request.trace = TraceContext.from_headers(
                request.headers, self.config.trace_sample_rate
            )
        trace = request.trace
        started = monotonic()
        tracer = self.obs.tracer
        with tracer.span(
            "service.request",
            method=request.method,
            path=request.path,
            request_id=trace.request_id,
        ) as span:
            try:
                status, payload, headers = await self._route(request)
            except HttpError as error:
                status, payload, headers = (
                    error.status,
                    {"error": error.message},
                    error.headers,
                )
            except RequestError as error:
                status, payload, headers = 400, {"error": str(error)}, {}
            except DeadlineExceeded as error:
                status, payload, headers = 504, {"error": str(error)}, {}
            except asyncio.CancelledError:
                raise
            except Exception as error:  # never leak a traceback to the wire
                logger.exception("unhandled error serving %s", request.path)
                status, payload, headers = (
                    500,
                    {"error": f"internal error: {type(error).__name__}"},
                    {},
                )
            span.set(status=status)
        bucket = f"{status // 100}xx"
        if bucket in self._responses:
            self._responses[bucket].inc()
        # Every response — 429s and 504s included — echoes the request
        # id, and error bodies carry it so clients can quote it.
        headers = dict(headers)
        headers.setdefault(REQUEST_ID_HEADER, trace.request_id)
        if status >= 400 and "error" in payload:
            payload = dict(payload)
            payload.setdefault("request_id", trace.request_id)
        self._observe_request(request, status, monotonic() - started)
        return status, payload, headers

    def _observe_request(
        self, request: HttpRequest, status: int, elapsed: float
    ) -> None:
        """Per-request accounting: histograms, burn, slow log, audit."""
        path = request.path.split("?", 1)[0]
        self._latency_histogram.observe(elapsed)
        self._endpoint_histogram(_endpoint_name(path)).observe(elapsed)
        burn = elapsed / self.config.deadline_s
        self._deadline_burn_gauge.set(burn)
        self._deadline_burn_histogram.observe(burn)
        trace = request.trace
        if elapsed >= self.config.slow_request_s:
            self._slow_counter.inc()
            logger.warning(
                "slow request: %s %s -> %d in %.1fms (%.0f%% of the "
                "deadline, request_id=%s)",
                request.method,
                path,
                status,
                elapsed * 1e3,
                burn * 100,
                trace.request_id if trace is not None else "-",
            )
        if trace is not None and trace.sampled:
            self.audit.record(
                RESPONSE_STAGE,
                trace.request_id,
                elapsed,
                status=status,
                method=request.method,
                path=path,
            )

    def _endpoint_histogram(self, endpoint: str) -> Histogram:
        histogram = self._endpoint_histograms.get(endpoint)
        if histogram is None:
            histogram = self.metrics.histogram(
                f"service.request.latency.{endpoint}"
            )
            self._endpoint_histograms[endpoint] = histogram
        return histogram

    def _debug_requests_payload(self, request: HttpRequest) -> Dict[str, Any]:
        """The ring-buffer view behind ``GET /v1/debug/requests``."""
        limit = _query_int(request.path, "limit", 64)
        return {
            "schema_version": AUDIT_SCHEMA_VERSION,
            "process": self.process_name,
            "sample_rate": self.config.trace_sample_rate,
            "requests": self.audit.recent(limit),
        }

    async def _route(self, request: HttpRequest) -> Route:
        raise NotImplementedError

    @staticmethod
    def _expect_method(request: HttpRequest, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405,
                f"{request.path} expects {method}, got {request.method}",
                headers={"Allow": method},
            )

    # -- inflight bookkeeping (admission + drain) ----------------------

    def _enter_inflight(self) -> None:
        self._inflight += 1
        self._inflight_gauge.set(self._inflight)
        assert self._idle is not None
        self._idle.clear()

    def _leave_inflight(self) -> None:
        self._inflight -= 1
        self._inflight_gauge.set(self._inflight)
        if self._inflight == 0:
            assert self._idle is not None
            self._idle.set()

    def _refuse_if_draining(self) -> None:
        if self._draining:
            raise HttpError(
                503,
                "server is draining",
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )


class EvaluationServer(AsyncJsonServer):
    """One asyncio HTTP server wired to an engine, batcher, and pool.

    ``shard_index`` identifies this server inside a sharded deployment
    (``repro serve --shards N``): it labels the health payload, the
    ``service.shard.index`` gauge, and the warm-start cache snapshot
    file.  A standalone server is simply shard ``None``.
    """

    def __init__(
        self,
        config: ServiceConfig,
        obs: Optional[Obs] = None,
        shard_index: Optional[int] = None,
    ) -> None:
        super().__init__(
            config,
            obs,
            process_name=(
                "server" if shard_index is None else f"shard{shard_index}"
            ),
        )
        self.shard_index = shard_index
        self.engine = Engine(
            backend=config.backend,
            obs=self.obs,
            cache=ShardLocalCache(config.cache_size),
        )
        self.engine.span_hook = self._engine_span_hook
        self.batcher = MicroBatcher(
            self.engine,
            self.metrics,
            max_batch=config.max_batch,
            max_wait_s=config.max_wait_s,
            audit=self.audit,
        )
        self.pool = WorkerPool(config.workers, self.metrics)
        if shard_index is not None:
            self.metrics.gauge("service.shard.index").set(shard_index)

    def _engine_span_hook(
        self, name: str, duration: float, attributes: Dict[str, Any]
    ) -> None:
        """Audit one engine execution, joined to its batch.

        Fires on the engine thread.  Only batch-tagged executions are
        recorded — the tag doubles as the sampling decision (the
        batcher tags the thread only when a sampled request rides the
        batch), so unsampled traffic costs nothing here.
        """
        batch_id = current_batch_id()
        if batch_id is None:
            return
        self.audit.record(
            ENGINE_STAGE,
            None,
            duration,
            batch_id=batch_id,
            operation=name,
            **attributes,
        )

    # -- lifecycle -----------------------------------------------------

    async def _start_components(self) -> None:
        # Snapshot import reads from disk — keep it off the loop even
        # at boot so a slow volume cannot delay the accept loop (RC006).
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._import_cache_snapshot)

    def _log_started(self) -> None:
        logger.info(
            "serving on http://%s:%d (backend=%s, workers=%d, "
            "max_batch=%d, max_wait=%.1fms, queue_limit=%d, shard=%s)",
            self.config.host,
            self.port,
            self.config.backend,
            self.config.workers,
            self.config.max_batch,
            self.config.max_wait_ms,
            self.config.queue_limit,
            self.shard_index if self.shard_index is not None else "-",
        )

    async def _shutdown_components(self) -> None:
        await self.batcher.drain()
        self.batcher.shutdown()
        self.pool.shutdown()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._export_cache_snapshot)

    # -- warm-start cache snapshots ------------------------------------

    def _snapshot_path(self) -> Optional[pathlib.Path]:
        if not self.config.cache_snapshot_dir:
            return None
        index = self.shard_index if self.shard_index is not None else 0
        return (
            pathlib.Path(self.config.cache_snapshot_dir)
            / f"shard-{index}.cache"
        )

    def _import_cache_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None or not path.exists():
            return
        try:
            imported = self.engine.import_cache_snapshot(path.read_bytes())
        except Exception:  # a stale/corrupt snapshot must not kill boot
            logger.warning("ignoring unreadable cache snapshot %s", path)
            return
        self.metrics.counter("service.cache.warm_start_entries").inc(imported)
        logger.info("warm start: %d cache entries from %s", imported, path)

    def _export_cache_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.engine.export_cache_snapshot())
        logger.info(
            "cache snapshot (%d entries) written to %s",
            self.engine.cache_len,
            path,
        )

    # -- routing -------------------------------------------------------

    async def _route(self, request: HttpRequest) -> Route:
        path = request.path.split("?", 1)[0]
        if path == "/healthz":
            self._expect_method(request, "GET")
            return 200, self._health_payload(), {}
        if path == "/metrics":
            self._expect_method(request, "GET")
            return (
                200,
                {
                    "schema_version": 1,
                    "metrics": self.metrics.snapshot(),
                },
                {},
            )
        if path == "/v1/debug/requests":
            self._expect_method(request, "GET")
            return 200, self._debug_requests_payload(request), {}
        if path == "/v1/evaluate":
            self._expect_method(request, "POST")
            return await self._admitted(self._handle_evaluate, request)
        if path.startswith("/v1/experiments/"):
            self._expect_method(request, "POST")
            return await self._admitted(self._handle_experiment, request)
        if path == "/v1/_sleep" and self.config.debug:
            self._expect_method(request, "POST")
            return await self._admitted(self._handle_sleep, request)
        raise HttpError(404, f"no route for {path!r}")

    def _health_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "backend": self.config.backend,
        }
        if self.shard_index is not None:
            payload["shard"] = self.shard_index
        return payload

    async def _admitted(self, handler: Any, request: HttpRequest) -> Route:
        """Run ``handler`` under admission control and the deadline."""
        trace = request.trace
        sampled = trace is not None and trace.sampled
        self._refuse_if_draining()
        if self._inflight >= self.config.queue_limit:
            self._rejected_counter.inc()
            if sampled:
                assert trace is not None
                self.audit.record(
                    ADMISSION_STAGE,
                    trace.request_id,
                    0.0,
                    admitted=False,
                    inflight=self._inflight,
                    queue_limit=self.config.queue_limit,
                )
            raise HttpError(
                429,
                f"admission queue full ({self.config.queue_limit} in "
                "flight); retry shortly",
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
        if sampled:
            assert trace is not None
            self.audit.record(
                ADMISSION_STAGE,
                trace.request_id,
                0.0,
                admitted=True,
                inflight=self._inflight,
                queue_limit=self.config.queue_limit,
            )
        self._enter_inflight()
        try:
            result: Route = await asyncio.wait_for(
                handler(request), timeout=self.config.deadline_s
            )
            return result
        except asyncio.TimeoutError as error:
            raise DeadlineExceeded(
                f"request exceeded its {self.config.deadline_s:.3f}s deadline"
            ) from error
        finally:
            self._leave_inflight()

    # -- endpoint handlers ---------------------------------------------

    async def _handle_evaluate(self, request: HttpRequest) -> Route:
        # parse_run resolves spec files named by the payload, so
        # parsing can touch disk — run it off-loop (RC006).
        spec = await asyncio.get_running_loop().run_in_executor(
            None, parse_evaluate_payload, request.json()
        )
        if isinstance(spec, ScaledEvaluateRequest):
            # Counter-abstraction request: exact, O(classes^2), no
            # graph — answered inline (off-loop with the parse-side
            # executor), bypassing micro-batcher and worker tier.
            evaluation = await asyncio.get_running_loop().run_in_executor(
                None, evaluate_spec, spec.protocol, spec.spec
            )
            return 200, scaled_evaluate_response(spec, evaluation), {}
        enumeration_limit = self.config.enumeration_limit
        exact = (
            spec.resolves_exact(enumeration_limit)
            if enumeration_limit is not None
            else spec.resolves_exact()
        )
        if exact:
            result = await self.batcher.submit(spec, trace=request.trace)
            return 200, build_evaluate_response(spec, result), {}
        payload = dict(spec.payload)
        payload["_backend"] = self.config.backend
        started = monotonic()
        outcome = await self.pool.run(
            evaluate_in_worker, payload, self.config.deadline_s
        )
        self._record_worker(
            request.trace, "evaluate", monotonic() - started, outcome
        )
        self.metrics.merge(outcome["metrics"])
        return 200, dict(outcome["response"]), {}

    def _record_worker(
        self,
        trace: Optional[TraceContext],
        operation: str,
        total_s: float,
        outcome: Dict[str, Any],
    ) -> None:
        """Audit one worker-tier dispatch, split into wait vs. compute.

        ``elapsed_seconds`` is the child's self-reported compute time;
        the difference from the dispatch total is time spent queued for
        a worker slot (plus dispatch overhead) — the worker tier's half
        of the queue-wait vs. compute-time split.
        """
        if trace is None or not trace.sampled:
            return
        compute = outcome.get("elapsed_seconds")
        attributes: Dict[str, Any] = {"operation": operation}
        if isinstance(compute, (int, float)):
            attributes["compute_s"] = round(float(compute), 6)
            attributes["queue_wait_s"] = round(
                max(0.0, total_s - float(compute)), 6
            )
        self.audit.record(
            WORKER_STAGE, trace.request_id, total_s, **attributes
        )

    async def _handle_experiment(self, request: HttpRequest) -> Route:
        experiment_id = request.path.rsplit("/", 1)[1]
        body = request.json()
        scale = body.get("scale", "quick")
        if scale not in ("quick", "full"):
            raise RequestError(f"unknown scale {scale!r}")
        seed = body.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise RequestError("seed must be an integer")
        from ..experiments import experiment_ids

        if experiment_id.upper() not in experiment_ids():
            raise HttpError(
                404,
                f"unknown experiment {experiment_id!r}; known: "
                f"{', '.join(experiment_ids())}",
            )
        payload = {
            "experiment": experiment_id,
            "scale": scale,
            "seed": seed,
            "_backend": self.config.backend,
        }
        started = monotonic()
        outcome = await self.pool.run(
            run_experiment_in_worker, payload, self.config.deadline_s
        )
        self._record_worker(
            request.trace, "experiment", monotonic() - started, outcome
        )
        self.metrics.merge(outcome["metrics"])
        return 200, dict(outcome["response"]), {}

    async def _handle_sleep(self, request: HttpRequest) -> Route:
        # Debug-only: a deterministic slow request for backpressure and
        # drain tests.  Admission, deadline, and response accounting all
        # apply, which is the point.
        body = request.json()
        seconds = body.get("seconds", 0.05)
        if not isinstance(seconds, (int, float)) or not 0 <= seconds <= 30:
            raise RequestError("seconds must be a number in [0, 30]")
        await asyncio.sleep(float(seconds))
        return 200, {"slept": float(seconds)}, {}


def make_server(
    config: ServiceConfig, obs: Optional[Obs] = None
) -> AsyncJsonServer:
    """The server for ``config``: sharded supervisor or single process."""
    if config.shards > 1:
        from .sharding import ShardedEvaluationServer

        return ShardedEvaluationServer(config, obs=obs)
    return EvaluationServer(config, obs=obs)


async def serve(config: ServiceConfig, obs: Optional[Obs] = None) -> None:
    """Run a server until SIGTERM/SIGINT (the ``repro serve`` body)."""
    server = make_server(config, obs=obs)
    await server.start()
    server.install_signal_handlers()
    # An unbuffered, parseable readiness line: scripts wait for it.
    print(f"serving on http://{config.host}:{server.port}", flush=True)
    await server.serve_until_shutdown()
