"""A background-thread server harness for tests, examples, and benches.

Runs the server for the given config — a single
:class:`~repro.service.server.EvaluationServer`, or the sharded
supervisor when ``config.shards > 1`` — on its own event loop in a
daemon thread, so synchronous callers (pytest, the examples, the
self-contained ``repro bench-serve``) can stand up a real server on
an ephemeral port, talk to it over real sockets, and tear it down —
the same code paths production traffic exercises, no mocks.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import replace
from types import TracebackType
from typing import Optional, Type

from ..obs import Obs
from .config import ServiceConfig
from .server import AsyncJsonServer, make_server

STARTUP_TIMEOUT_S = 10.0


class BackgroundServer:
    """Context manager: a live server on ``127.0.0.1:<ephemeral>``."""

    def __init__(
        self, config: Optional[ServiceConfig] = None, obs: Optional[Obs] = None
    ) -> None:
        base = config if config is not None else ServiceConfig()
        # Ephemeral port unless the caller pinned one explicitly.
        self.config = base if base.port else replace(base, port=0)
        self._obs = obs
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[AsyncJsonServer] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.port: int = 0

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def server(self) -> AsyncJsonServer:
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        # Each shard is a spawned interpreter that re-imports the
        # package; give sharded configs a proportionally longer grace.
        if not self._ready.wait(STARTUP_TIMEOUT_S * self.config.shards):
            raise RuntimeError("server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced to start() or stop()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        server = make_server(self.config, obs=self._obs)
        await server.start()
        self._server = server
        self._loop = asyncio.get_running_loop()
        self.port = server.port
        self._ready.set()
        await server.serve_until_shutdown()

    def stop(self) -> None:
        """Graceful drain from the outside; joins the server thread."""
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            # A sharded drain is two phases (supervisor, then shards),
            # so allow the drain budget twice plus reaping slack.
            drain_budget = self.config.drain_timeout_s * (
                2 if self.config.shards > 1 else 1
            )
            self._thread.join(drain_budget + STARTUP_TIMEOUT_S)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not stop")
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.stop()
