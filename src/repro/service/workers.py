"""The worker tier: CPU-bound evaluations off the event loop.

Monte-Carlo estimates and experiment launches are seconds of pure
Python compute — run inline they would freeze the accept loop, and run
on server threads they would fight the GIL.  A
:class:`concurrent.futures.ProcessPoolExecutor` (``spawn`` start
method, safe under the threaded test harness) gives them real
parallelism; with ``workers=0`` the pool degrades to the default
thread executor so tests and tiny deployments stay single-process.

Work ships as plain JSON-able dicts in both directions: the child
process re-parses the spec, evaluates with its **own** engine and
metrics registry, and returns ``{"response", "metrics"}`` — the
server folds the returned snapshot into its registry
(:meth:`MetricsRegistry.merge
<repro.obs.MetricsRegistry.merge>`), so ``GET /metrics`` covers worker
compute without any shared memory.

Randomness stays deterministic per request, not per schedule: each
Monte-Carlo evaluation draws from the labeled stream
``spawn_random(seed, "service", "evaluate", protocol, run, trials)``,
so identical requests replay identical estimates no matter which
worker runs them or who else is in flight.

Deadlines: the server wraps every worker dispatch in
``asyncio.wait_for``.  On expiry the dispatch is cancelled — queued
work is dropped; work already executing runs to completion in the
child but its result is discarded (process pools cannot preempt), and
the client gets a 504 either way.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Dict, Optional

from ..core.seeding import spawn_random
from ..engine import Engine
from ..obs import MetricsRegistry, Obs, Tracer
from ..obs.runtime import monotonic
from .specs import evaluate_response, parse_evaluate_payload


class DeadlineExceeded(Exception):
    """The per-request deadline expired before the worker finished."""


def evaluate_in_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry point: evaluate one request payload.

    Top-level (picklable) on purpose.  Runs with a private engine and
    registry; the caller merges the returned metrics snapshot.
    ``elapsed_seconds`` is the child's own compute time — the server
    subtracts it from the dispatch total to attribute queue-wait on
    the request's audit record (it never reaches the client response).
    """
    payload = dict(payload)
    backend = str(payload.pop("_backend", "auto"))
    request = parse_evaluate_payload(payload)
    metrics = MetricsRegistry()
    engine = Engine(
        backend=backend,
        obs=Obs(metrics=metrics, tracer=Tracer(enabled=False)),
    )
    rng = spawn_random(
        request.seed,
        "service",
        "evaluate",
        request.protocol_spec,
        request.run_spec,
        request.trials,
    )
    started = monotonic()
    result = engine.evaluate(
        request.protocol,
        request.topology,
        request.run,
        method=request.method,
        trials=request.trials,
        rng=rng,
    )
    return {
        "response": evaluate_response(request, result),
        "metrics": metrics.snapshot(),
        "elapsed_seconds": monotonic() - started,
    }


def run_experiment_in_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry point: run one experiment end to end."""
    from ..experiments import run_experiment
    from ..experiments.common import Config

    config = Config(
        scale=str(payload.get("scale", "quick")),
        seed=int(payload.get("seed", 0)),
        backend=str(payload.get("_backend", "auto")),
    )
    started = monotonic()
    report = run_experiment(str(payload["experiment"]), config)
    elapsed = monotonic() - started
    return {
        "response": {
            "experiment": report.experiment_id,
            "title": report.title,
            "passed": report.passed,
            "scale": config.scale,
            "seed": config.seed,
            "notes": list(report.notes),
            "tables": [table.title for table in report.tables],
            "engine": report.metadata.get("engine", {}),
        },
        "metrics": config.obs().metrics.snapshot(),
        "elapsed_seconds": elapsed,
    }


class WorkerPool:
    """Dispatches payloads to the worker tier with deadlines."""

    def __init__(
        self, workers: int, metrics: MetricsRegistry
    ) -> None:
        self.workers = workers
        self._executor: Optional[Executor] = None
        if workers > 0:
            # ``spawn`` keeps child startup independent of the server's
            # threads (fork in a threaded process is a deadlock lottery).
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        self._dispatch_counter = metrics.counter("service.worker.dispatches")
        self._deadline_counter = metrics.counter(
            "service.worker.deadline_exceeded"
        )
        self._failure_counter = metrics.counter("service.worker.failures")

    async def run(
        self,
        fn: Any,
        payload: Dict[str, Any],
        deadline_s: float,
    ) -> Dict[str, Any]:
        """Run ``fn(payload)`` on the tier; raises on deadline expiry."""
        loop = asyncio.get_running_loop()
        self._dispatch_counter.inc()
        future = loop.run_in_executor(self._executor, fn, payload)
        try:
            result: Dict[str, Any] = await asyncio.wait_for(
                future, timeout=deadline_s
            )
        except asyncio.TimeoutError as error:
            # wait_for already cancelled the dispatch: queued work is
            # dropped; running work finishes in the child unobserved.
            self._deadline_counter.inc()
            raise DeadlineExceeded(
                f"evaluation exceeded its {deadline_s:.3f}s deadline"
            ) from error
        except Exception:
            self._failure_counter.inc()
            raise
        return result

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
