"""Service configuration: one frozen dataclass of serving knobs.

Defaults are tuned for a laptop-scale deployment: a couple of
milliseconds of batch-collection latency buys order-of-magnitude
coalescing under concurrent load, and a bounded admission queue keeps
tail latency flat by shedding load (429) instead of queueing without
bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine import BACKENDS, DEFAULT_CACHE_SIZE
from ..obs.runtime import LOG_LEVELS

DEFAULT_PORT = 8642

#: Default size-based rotation threshold for per-process audit logs.
DEFAULT_AUDIT_MAX_BYTES = 4 * 1024 * 1024

#: Default in-memory ring-buffer depth behind ``/v1/debug/requests``.
DEFAULT_AUDIT_RING = 256


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the evaluation server in one place.

    ``workers`` selects the worker tier for CPU-bound work (Monte
    Carlo estimates, experiment launches): ``0`` evaluates inline on
    the server's executor thread (tests, tiny deployments), ``> 0``
    runs a process pool of that size so the GIL stops being the
    ceiling.  ``queue_limit`` bounds concurrently admitted requests —
    the (queue_limit+1)-th concurrent evaluation is rejected with
    ``429`` and a ``Retry-After`` hint rather than queued forever.

    ``max_batch`` / ``max_wait_ms`` shape the micro-batcher: a request
    waits at most ``max_wait_ms`` for companions that share its batch
    key, and a group is flushed early once ``max_batch`` requests have
    coalesced.

    ``shards`` scales the serving tier horizontally: ``1`` (the
    default) is the classic single-process server; ``> 1`` runs that
    many spawn-context shard processes — each a complete
    :class:`~repro.service.server.EvaluationServer` with its own
    engine, cache, batcher, and worker tier — behind a supervisor
    that consistent-hash routes ``/v1/evaluate`` on the request's
    batch key (DESIGN.md §11).  Per-shard knobs (``workers``,
    ``queue_limit``, ``max_batch``, ...) apply to *each* shard.

    ``cache_size`` bounds each engine's exact-result memo cache, and
    ``cache_snapshot_dir`` (optional) enables warm starts: on drain
    every shard exports its cache to ``<dir>/shard-<i>.cache`` and
    re-imports it on the next boot, re-keyed through
    ``Engine.cache_key`` so snapshots survive hash randomization.

    ``debug`` enables the ``POST /v1/_sleep`` test hook (an admitted,
    deadline-checked request that just sleeps), which the backpressure
    and drain tests use to hold the admission queue open
    deterministically.  Never enable it on a real deployment.

    ``audit_dir`` enables persistent request audit trails: every
    process (supervisor, each shard, a standalone server) appends
    span records to its own ``audit-<process>.jsonl`` under the
    directory, rotated once it passes ``audit_max_bytes`` (one ``.1``
    backup is kept).  ``repro audit <request_id>`` stitches those
    files into one request tree.  With no directory, the in-memory
    ring of the last ``audit_ring`` records behind
    ``GET /v1/debug/requests`` still works.  ``trace_sample_rate``
    picks which requests are audited — the decision is a
    deterministic hash of the request id, so every process agrees
    without coordination, and client-supplied ``X-Repro-Request-Id``
    values are always sampled.  Requests slower than
    ``slow_request_ms`` are logged at WARNING with their request id.
    ``log_level`` is the ``repro.*`` logger level, propagated into
    spawned shard processes (each prefixes its lines ``shard=<i>``).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    backend: str = "auto"
    seed: int = 0
    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_limit: int = 64
    workers: int = 0
    deadline_ms: float = 30_000.0
    drain_timeout_s: float = 10.0
    max_body_bytes: int = 1 << 20
    enumeration_limit: Optional[int] = None
    shards: int = 1
    cache_size: int = DEFAULT_CACHE_SIZE
    cache_snapshot_dir: Optional[str] = None
    debug: bool = False
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    audit_dir: Optional[str] = None
    audit_max_bytes: int = DEFAULT_AUDIT_MAX_BYTES
    audit_ring: int = DEFAULT_AUDIT_RING
    trace_sample_rate: float = 1.0
    slow_request_ms: float = 1_000.0
    log_level: str = "info"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port {self.port} out of range")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if not 1 <= self.shards <= 64:
            raise ValueError("shards must be in [1, 64]")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.audit_max_bytes < 1024:
            raise ValueError("audit_max_bytes must be >= 1024")
        if self.audit_ring < 1:
            raise ValueError("audit_ring must be >= 1")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.slow_request_ms <= 0:
            raise ValueError("slow_request_ms must be > 0")
        if self.log_level not in LOG_LEVELS:
            raise ValueError(
                f"unknown log_level {self.log_level!r}; expected one of "
                f"{LOG_LEVELS}"
            )

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0

    @property
    def deadline_s(self) -> float:
        return self.deadline_ms / 1000.0

    @property
    def slow_request_s(self) -> float:
        return self.slow_request_ms / 1000.0
