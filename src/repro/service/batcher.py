"""The micro-batcher: coalesce concurrent requests into engine batches.

Requests that share an :meth:`Engine.batch_key
<repro.engine.Engine.batch_key>` — same protocol, topology, method,
and trial count, only the run differs — are collected for up to
``max_wait_s`` (or until ``max_batch`` of them pile up) and submitted
as **one** :meth:`Engine.evaluate_many
<repro.engine.Engine.evaluate_many>` call.  Under concurrent load
this turns N scalar evaluations into one vectorized batch plus one
memo-cache sweep, which is where the serving path's throughput comes
from; an idle service degrades to scalar calls delayed by at most the
batch window.

Engine work runs on a dedicated single-thread executor: the engine's
memo cache is not thread-safe, and one worker thread both serializes
it and keeps the event loop free to accept requests while a batch
computes.  Only exact (cacheable) requests belong here — Monte Carlo
estimates would consume one shared rng stream in coalescing order,
making results depend on who else was in flight; those go to the
worker tier instead (see :mod:`repro.service.workers`).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.probability import EventProbabilities
from ..engine import Engine
from ..obs import AuditLogger, MetricsRegistry, TraceContext, new_request_id
from ..obs.audit import BATCH_STAGE, clear_batch_context, set_batch_context
from ..obs.runtime import monotonic
from .specs import EvaluateRequest

#: Batch-size histogram buckets: powers of two up to a generous cap.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class _PendingBatch:
    """One forming batch: requests plus the futures awaiting them."""

    __slots__ = ("requests", "futures", "timer", "traces", "submitted")

    def __init__(self) -> None:
        self.requests: List[EvaluateRequest] = []
        self.futures: List["asyncio.Future[EventProbabilities]"] = []
        self.timer: Optional[asyncio.TimerHandle] = None
        self.traces: List[Optional[TraceContext]] = []
        self.submitted: List[float] = []


class MicroBatcher:
    """Coalesces concurrent scalar evaluations into engine batch calls."""

    def __init__(
        self,
        engine: Engine,
        metrics: MetricsRegistry,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        audit: Optional[AuditLogger] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._engine = engine
        self._max_batch = max_batch
        self._max_wait_s = max_wait_s
        self._audit = audit
        self._pending: Dict[tuple, _PendingBatch] = {}
        self._tasks: "set[asyncio.Task[None]]" = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._size_histogram = metrics.histogram(
            "service.batch.size", BATCH_SIZE_BUCKETS
        )
        self._flush_counter = metrics.counter("service.batch.flushes")
        self._request_counter = metrics.counter("service.batch.requests")
        self._coalesced_counter = metrics.counter("service.batch.coalesced")

    async def submit(
        self,
        request: EvaluateRequest,
        trace: Optional[TraceContext] = None,
    ) -> EventProbabilities:
        """Evaluate one request, possibly riding a coalesced batch.

        ``trace`` is the request's audit identity: sampled members get
        their id listed on the batch's audit record (with the
        queue-wait each one paid for coalescing), which is how
        ``repro audit`` joins one batch span to N request spans.
        """
        loop = asyncio.get_running_loop()
        self._request_counter.inc()
        key = self._engine.batch_key(
            request.protocol,
            request.topology,
            request.method,
            request.trials,
        )
        if key is None:
            # Unhashable spec: no coalescing, straight to the engine
            # thread as a batch of one.
            return await loop.run_in_executor(
                self._executor,
                partial(
                    self._engine.evaluate,
                    request.protocol,
                    request.topology,
                    request.run,
                    method=request.method,
                    trials=request.trials,
                ),
            )
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch()
            self._pending[key] = batch
            if self._max_wait_s > 0:
                batch.timer = loop.call_later(
                    self._max_wait_s, self._flush, key
                )
        future: "asyncio.Future[EventProbabilities]" = loop.create_future()
        batch.requests.append(request)
        batch.futures.append(future)
        batch.traces.append(trace)
        batch.submitted.append(monotonic())
        if len(batch.requests) >= self._max_batch or self._max_wait_s == 0:
            self._flush(key)
        return await future

    def _flush(self, key: tuple) -> None:
        """Detach the forming batch for ``key`` and start evaluating it."""
        batch = self._pending.pop(key, None)
        if batch is None:
            return  # already flushed (size trigger beat the timer)
        if batch.timer is not None:
            batch.timer.cancel()
        task = asyncio.get_running_loop().create_task(self._run_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, batch: _PendingBatch) -> None:
        loop = asyncio.get_running_loop()
        size = len(batch.requests)
        self._flush_counter.inc()
        self._size_histogram.observe(size)
        if size > 1:
            self._coalesced_counter.inc(size)
        template = batch.requests[0]
        runs = [request.run for request in batch.requests]
        audited = self._audit is not None and any(
            trace is not None and trace.sampled for trace in batch.traces
        )
        batch_id = new_request_id() if audited else None
        call: Callable[[], List[EventProbabilities]] = partial(
            self._engine.evaluate_many,
            template.protocol,
            template.topology,
            runs,
            method=template.method,
            trials=template.trials,
        )
        if batch_id is not None:
            call = partial(self._call_with_batch_context, batch_id, call)
        flushed = monotonic()
        error: Optional[Exception] = None
        results: List[EventProbabilities] = []
        try:
            results = await loop.run_in_executor(self._executor, call)
        except Exception as caught:  # surface to every coalesced waiter
            error = caught
        if batch_id is not None:
            self._record_batch(batch, batch_id, flushed, size, error)
        if error is not None:
            for future in batch.futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(batch.futures, results):
            if not future.done():
                future.set_result(result)

    @staticmethod
    def _call_with_batch_context(
        batch_id: str, call: Callable[[], List[EventProbabilities]]
    ) -> List[EventProbabilities]:
        """Run ``call`` on the engine thread tagged with the batch id.

        The tag is what lets the engine's ``span_hook`` join its audit
        record to this batch — executor boundaries drop contextvars,
        so the identity travels by thread-local instead.
        """
        set_batch_context(batch_id)
        try:
            return call()
        finally:
            clear_batch_context()

    def _record_batch(
        self,
        batch: _PendingBatch,
        batch_id: str,
        flushed: float,
        size: int,
        error: Optional[Exception],
    ) -> None:
        """One batch span fanning in N member request spans.

        ``member_queue_wait_s`` aligns with ``member_request_ids``:
        each entry is the time that member spent parked in the
        coalescing window — the queue-wait half of the queue-wait vs.
        compute-time split (compute is the joined engine span).
        """
        assert self._audit is not None
        attributes: Dict[str, Any] = {
            "batch_id": batch_id,
            "size": size,
            "member_request_ids": [
                trace.request_id if trace is not None else None
                for trace in batch.traces
            ],
            "member_queue_wait_s": [
                round(max(0.0, flushed - submitted), 6)
                for submitted in batch.submitted
            ],
        }
        if error is not None:
            attributes["error"] = type(error).__name__
        self._audit.record(
            BATCH_STAGE, None, monotonic() - flushed, **attributes
        )

    @property
    def pending_requests(self) -> int:
        return sum(len(batch.requests) for batch in self._pending.values())

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight batches."""
        for key in list(self._pending):
            self._flush(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def shutdown(self) -> None:
        """Stop the engine thread (call after :meth:`drain`)."""
        self._executor.shutdown(wait=False, cancel_futures=True)
