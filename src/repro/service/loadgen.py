"""Load generator: drive a running server, record latency percentiles.

``repro bench-serve`` front-ends :func:`run_bench`: open ``concurrency``
keep-alive connections, push ``requests`` evaluation requests through
them as fast as the server answers, then write a self-describing
``BENCH_serve.json`` artifact (``schema_version`` 2 style: UTC
timestamp, git SHA, latency percentiles, throughput, and the server's
own ``/metrics`` snapshot — including ``service.batch.size``, whose
``max`` is the proof the micro-batcher actually coalesced).

The default workload is deliberately coalescable: every request
evaluates the same Protocol S / topology / trials spec on a rotating
run (``cut:K``), so concurrent requests share a batch key and differ
only in the run — the exact shape the batcher exists for.  ``--spread``
widens the mix across distinct protocols to measure the uncoalesced
path instead.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.runtime import monotonic, utc_now_isoformat
from .http import ClientConnection
from .testing import BackgroundServer

BENCH_SCHEMA_VERSION = 2

#: Percentiles reported in the artifact.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class LoadgenOptions:
    """Workload shape for one bench run."""

    requests: int = 200
    concurrency: int = 16
    rounds: int = 8
    protocol: str = "S:0.25"
    topology: str = "pair"
    spread: bool = False  # vary the protocol too (defeats coalescing)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")


@dataclass
class LoadReport:
    """Everything one load run measured."""

    requests_total: int = 0
    requests_ok: int = 0
    requests_rejected: int = 0
    requests_failed: int = 0
    duration_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    server_metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests_total / self.duration_seconds

    def latency_summary(self) -> Dict[str, float]:
        samples = sorted(self.latencies)
        if not samples:
            return {}
        summary = {
            "min": samples[0],
            "max": samples[-1],
            "mean": sum(samples) / len(samples),
        }
        for q in PERCENTILES:
            summary[f"p{q:g}"] = percentile(samples, q)
        return summary


def percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sample list."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = math.ceil(q / 100.0 * len(sorted_samples))
    index = min(len(sorted_samples) - 1, max(0, rank - 1))
    return sorted_samples[index]


def _request_payload(options: LoadgenOptions, index: int) -> Dict[str, Any]:
    protocol = options.protocol
    if options.spread:
        # Rotate epsilon so every request is a distinct batch key.
        protocol = f"S:{0.05 + 0.9 * ((index % 17) / 17.0):.4f}"
    return {
        "protocol": protocol,
        "topology": options.topology,
        "rounds": options.rounds,
        "run": f"cut:{1 + index % options.rounds}",
        "seed": options.seed,
    }


async def run_load(
    host: str, port: int, options: LoadgenOptions
) -> LoadReport:
    """Drive a live server; returns the measured :class:`LoadReport`."""
    import asyncio

    report = LoadReport()
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        connection = await ClientConnection.open(host, port)
        try:
            while True:
                if next_index >= options.requests:
                    return
                index = next_index
                next_index += 1
                payload = _request_payload(options, index)
                started = monotonic()
                try:
                    status, _, _ = await connection.request(
                        "POST", "/v1/evaluate", payload
                    )
                except (ConnectionError, OSError):
                    report.requests_failed += 1
                    connection_retry = await ClientConnection.open(host, port)
                    await connection.close()
                    connection = connection_retry
                    continue
                report.latencies.append(monotonic() - started)
                if status == 200:
                    report.requests_ok += 1
                elif status == 429:
                    report.requests_rejected += 1
                else:
                    report.requests_failed += 1
        finally:
            await connection.close()

    started = monotonic()
    await asyncio.gather(
        *(worker() for _ in range(options.concurrency))
    )
    report.duration_seconds = monotonic() - started
    report.requests_total = (
        report.requests_ok + report.requests_rejected + report.requests_failed
    )
    # One last request for the server's own accounting of the run.
    connection = await ClientConnection.open(host, port)
    try:
        status, _, payload = await connection.request("GET", "/metrics")
        if status == 200:
            report.server_metrics = dict(payload.get("metrics", {}))
    finally:
        await connection.close()
    return report


def _git_sha() -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return completed.stdout.strip() or None


def bench_payload(
    report: LoadReport, options: LoadgenOptions, target: str
) -> Dict[str, Any]:
    """The ``BENCH_serve.json`` artifact body for one load run."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at_utc": utc_now_isoformat(),
        "git_sha": _git_sha(),
        "benchmark": "serve",
        "target": target,
        "workload": {
            "requests": options.requests,
            "concurrency": options.concurrency,
            "rounds": options.rounds,
            "protocol": options.protocol,
            "topology": options.topology,
            "spread": options.spread,
            "seed": options.seed,
        },
        "requests_total": report.requests_total,
        "requests_ok": report.requests_ok,
        "requests_rejected": report.requests_rejected,
        "requests_failed": report.requests_failed,
        "duration_seconds": report.duration_seconds,
        "throughput_rps": report.throughput_rps,
        "latency_seconds": report.latency_summary(),
        "metrics": report.server_metrics,
    }


def write_bench_artifact(path: str, payload: Dict[str, Any]) -> None:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def run_bench(
    options: LoadgenOptions,
    host: Optional[str] = None,
    port: Optional[int] = None,
    output: Optional[str] = None,
    server_config: Optional[Any] = None,
) -> Dict[str, Any]:
    """One full bench: external server if addressed, else self-contained.

    With ``host``/``port`` the load targets an already-running server;
    otherwise a :class:`BackgroundServer` (configured by
    ``server_config``) is stood up on an ephemeral port for the run
    and drained afterwards.  Returns the artifact payload; also writes
    it to ``output`` when given.
    """
    import asyncio

    if host is not None and port is not None:
        target = f"http://{host}:{port}"
        report = asyncio.run(run_load(host, port, options))
    else:
        with BackgroundServer(server_config) as background:
            target = f"http://{background.host}:{background.port} (in-process)"
            report = asyncio.run(
                run_load(background.host, background.port, options)
            )
    payload = bench_payload(report, options, target)
    if output:
        write_bench_artifact(output, payload)
    return payload
