"""Load generator: drive a running server, record SLO evidence.

``repro bench-serve`` front-ends :func:`run_bench`: open ``concurrency``
keep-alive connections (optionally across ``processes`` spawn-context
generator processes, so the measuring side stops being the bottleneck
before the serving side does), push ``requests`` evaluation requests
through them as fast as the server answers, then write a
self-describing ``BENCH_serve.json`` artifact (``schema_version`` 4:
UTC timestamp, git SHA, CPU count, a **scaling curve** across shard
counts, per-entry SLO blocks — aggregate and per-shard p50/p95/p99
over *served* requests, shed rate, and the ``service.batch.size``
maximum that proves the micro-batcher coalesced — plus an optional
``tracing`` block measuring the audit trail's p99 overhead, a
tracing-off vs. tracing-on pair of runs at the headline shard
count).

Latency accounting is deliberate: a ``429`` shed with ``Retry-After``
is the server doing its job *fast*, so sheds are counted separately
(``requests_rejected`` / ``requests_rejected_with_retry_after``) and
**excluded** from the latency percentiles — mixing millisecond
rejections into the served distribution would flatter p99 exactly
when the server is overloaded.

Against a sharded server the generator fetches ``GET /shards`` and
routes each request directly to its owning shard with the same
blake2b ring the supervisor uses (:mod:`repro.service.sharding`), so
the supervisor hop is off the measured path and per-shard latency is
attributable.  A single-process server answers 404 there and the
generator falls back to the one target.

The default workload is deliberately coalescable: every request
evaluates the same Protocol S / topology / trials spec on a rotating
run (``cut:K``), so concurrent requests share a batch key and differ
only in the run — the exact shape the batcher exists for.
``--groups G`` rotates across G distinct protocols (coalescable
within a group, spread across shards); ``--spread`` makes every
request a distinct batch key to measure the uncoalesced path.
"""

from __future__ import annotations

import asyncio
import json
import math
import multiprocessing
import os
import pathlib
import subprocess
import tempfile
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from multiprocessing.connection import Connection

from ..obs.audit import load_audit_dir
from ..obs.runtime import monotonic, utc_now_isoformat
from .http import ClientConnection, request_once
from .sharding import ShardRing, routing_key
from .testing import BackgroundServer

BENCH_SCHEMA_VERSION = 4

#: Percentiles reported in the artifact.
PERCENTILES = (50.0, 95.0, 99.0)

#: Seconds the parent waits for each generator process to come up.
LOADGEN_STARTUP_TIMEOUT_S = 120.0

#: Seconds the parent waits for a generator process's results.
LOADGEN_DONE_TIMEOUT_S = 600.0


@dataclass(frozen=True)
class LoadgenOptions:
    """Workload shape for one bench run."""

    requests: int = 200
    concurrency: int = 16
    processes: int = 1
    rounds: int = 8
    protocol: str = "S:0.25"
    topology: str = "pair"
    spread: bool = False  # vary the protocol per request (defeats coalescing)
    groups: int = 1  # rotate across this many distinct batch groups
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.groups < 1:
            raise ValueError("groups must be >= 1")


@dataclass
class LoadReport:
    """Everything one load run measured.

    ``latencies`` holds **served (200) requests only** — sheds and
    failures are counted but never enter the percentile math.  Shard
    attribution is keyed by the target index the request was routed
    to (``"0"`` for a single-target run).
    """

    requests_total: int = 0
    requests_ok: int = 0
    requests_rejected: int = 0
    requests_rejected_with_retry_after: int = 0
    requests_failed: int = 0
    duration_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    shard_latencies: Dict[str, List[float]] = field(default_factory=dict)
    shard_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    server_metrics: Dict[str, Any] = field(default_factory=dict)
    per_shard_server_metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests_total / self.duration_seconds

    @property
    def served_throughput_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests_ok / self.duration_seconds

    @property
    def shed_rate(self) -> float:
        if self.requests_total <= 0:
            return 0.0
        return self.requests_rejected / self.requests_total

    # -- accumulation --------------------------------------------------

    def _counts(self, shard: int) -> Dict[str, int]:
        return self.shard_counts.setdefault(
            str(shard), {"ok": 0, "rejected": 0, "failed": 0}
        )

    def note_served(self, shard: int, seconds: float) -> None:
        self.requests_ok += 1
        self.latencies.append(seconds)
        self.shard_latencies.setdefault(str(shard), []).append(seconds)
        self._counts(shard)["ok"] += 1

    def note_rejected(self, shard: int, had_retry_after: bool) -> None:
        self.requests_rejected += 1
        if had_retry_after:
            self.requests_rejected_with_retry_after += 1
        self._counts(shard)["rejected"] += 1

    def note_failed(self, shard: int) -> None:
        self.requests_failed += 1
        self._counts(shard)["failed"] += 1

    def finalize(self) -> None:
        self.requests_total = (
            self.requests_ok + self.requests_rejected + self.requests_failed
        )

    def merge(self, other: "LoadReport") -> None:
        """Fold another generator process's report into this one."""
        self.requests_ok += other.requests_ok
        self.requests_rejected += other.requests_rejected
        self.requests_rejected_with_retry_after += (
            other.requests_rejected_with_retry_after
        )
        self.requests_failed += other.requests_failed
        self.latencies.extend(other.latencies)
        for shard, samples in other.shard_latencies.items():
            self.shard_latencies.setdefault(shard, []).extend(samples)
        for shard, counts in other.shard_counts.items():
            mine = self.shard_counts.setdefault(
                shard, {"ok": 0, "rejected": 0, "failed": 0}
            )
            for key, value in counts.items():
                mine[key] = mine.get(key, 0) + value
        self.requests_total = (
            self.requests_ok + self.requests_rejected + self.requests_failed
        )

    # -- summaries -----------------------------------------------------

    def latency_summary(self) -> Dict[str, float]:
        return _summarize(self.latencies)

    def shard_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-shard SLO block: counts, shed rate, served percentiles."""
        summary: Dict[str, Dict[str, Any]] = {}
        for shard in sorted(self.shard_counts, key=int):
            counts = self.shard_counts[shard]
            total = sum(counts.values())
            summary[shard] = {
                "requests": total,
                "ok": counts.get("ok", 0),
                "rejected": counts.get("rejected", 0),
                "failed": counts.get("failed", 0),
                "shed_rate": (
                    counts.get("rejected", 0) / total if total else 0.0
                ),
                "latency_seconds": _summarize(
                    self.shard_latencies.get(shard, [])
                ),
            }
        return summary


def _summarize(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    if not ordered:
        return {}
    summary = {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
    }
    for q in PERCENTILES:
        summary[f"p{q:g}"] = percentile(ordered, q)
    return summary


def percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sample list."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = math.ceil(q / 100.0 * len(sorted_samples))
    index = min(len(sorted_samples) - 1, max(0, rank - 1))
    return sorted_samples[index]


def _request_payload(options: LoadgenOptions, index: int) -> Dict[str, Any]:
    protocol = options.protocol
    if options.spread:
        # Rotate epsilon so every request is a distinct batch key.
        protocol = f"S:{0.05 + 0.9 * ((index % 17) / 17.0):.4f}"
    elif options.groups > 1:
        # A few distinct batch groups: coalescable within each, enough
        # routing entropy to occupy every shard.
        group = index % options.groups
        protocol = f"S:{0.05 + 0.9 * (group / options.groups):.4f}"
    return {
        "protocol": protocol,
        "topology": options.topology,
        "rounds": options.rounds,
        "run": f"cut:{1 + index % options.rounds}",
        "seed": options.seed,
    }


async def _discover_targets(
    host: str, port: int
) -> Optional[List[Tuple[str, int]]]:
    """The shard routing table, or None for a single-process server."""
    try:
        status, _, body = await request_once(host, port, "GET", "/shards")
    except (ConnectionError, OSError):
        return None
    if status != 200:
        return None
    entries = body.get("shards")
    if not isinstance(entries, list) or not entries:
        return None
    table: List[Tuple[str, int]] = []
    for entry in sorted(entries, key=lambda item: int(item.get("shard", 0))):
        table.append((str(entry.get("host", host)), int(entry["port"])))
    return table


async def _scrape_metrics(host: str, port: int, report: LoadReport) -> None:
    """One last scrape for the server's own accounting of the run."""
    try:
        status, _, payload = await request_once(host, port, "GET", "/metrics")
    except (ConnectionError, OSError):
        return
    if status == 200:
        report.server_metrics = dict(payload.get("metrics", {}))
        per_shard = payload.get("per_shard")
        if isinstance(per_shard, dict):
            report.per_shard_server_metrics = dict(per_shard)


async def run_load(
    host: str,
    port: int,
    options: LoadgenOptions,
    offset: int = 0,
    count: Optional[int] = None,
    scrape: bool = True,
) -> LoadReport:
    """Drive a live server; returns the measured :class:`LoadReport`.

    ``offset``/``count`` select a slice of the request index space, so
    several generator processes can split one workload without
    changing the payload mix.  Against a sharded server each request
    goes directly to its owning shard (see module docstring).
    """
    report = LoadReport()
    total = options.requests if count is None else count
    next_index = offset
    end_index = offset + total

    targets = await _discover_targets(host, port) or [(host, port)]
    ring = ShardRing(len(targets)) if len(targets) > 1 else None

    async def worker() -> None:
        nonlocal next_index
        connections: Dict[int, ClientConnection] = {}
        try:
            while True:
                if next_index >= end_index:
                    return
                index = next_index
                next_index += 1
                payload = _request_payload(options, index)
                shard = (
                    ring.shard_for(routing_key(payload)) if ring else 0
                )
                connection = connections.get(shard)
                if connection is None:
                    connection = await ClientConnection.open(*targets[shard])
                    connections[shard] = connection
                started = monotonic()
                try:
                    status, headers, _ = await connection.request(
                        "POST", "/v1/evaluate", payload
                    )
                except (ConnectionError, OSError):
                    report.note_failed(shard)
                    await connection.close()
                    connections.pop(shard, None)
                    continue
                elapsed = monotonic() - started
                if status == 200:
                    report.note_served(shard, elapsed)
                elif status == 429:
                    report.note_rejected(shard, "retry-after" in headers)
                else:
                    report.note_failed(shard)
        finally:
            for connection in connections.values():
                await connection.close()

    started = monotonic()
    await asyncio.gather(*(worker() for _ in range(options.concurrency)))
    report.duration_seconds = monotonic() - started
    report.finalize()
    if scrape:
        await _scrape_metrics(host, port, report)
    return report


def _loadgen_entry(
    host: str,
    port: int,
    options: LoadgenOptions,
    offset: int,
    count: int,
    channel: Connection,
) -> None:
    """Spawn-context entry point of one generator process."""
    channel.send(("ready", None))
    channel.recv()  # the parent's "go" — all processes start together
    report = asyncio.run(
        run_load(host, port, options, offset=offset, count=count, scrape=False)
    )
    channel.send(("done", report))
    channel.close()


def execute_load(host: str, port: int, options: LoadgenOptions) -> LoadReport:
    """Run the workload, fanning out across generator processes.

    With ``processes == 1`` this is ``asyncio.run(run_load(...))``.
    Beyond that, spawn-context processes each drive a contiguous slice
    of the request index space; the parent releases them through a
    ready/go barrier (so spawn+import cost never lands inside the
    measured window), merges their reports, and takes the wall-clock
    of the overlapped window as the run duration.
    """
    if options.processes == 1:
        return asyncio.run(run_load(host, port, options))
    context = multiprocessing.get_context("spawn")
    channels: List[Connection] = []
    processes: List[Any] = []
    base, extra = divmod(options.requests, options.processes)
    offset = 0
    try:
        for rank in range(options.processes):
            count = base + (1 if rank < extra else 0)
            if count == 0:
                continue
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_loadgen_entry,
                args=(host, port, options, offset, count, child_end),
                name=f"repro-loadgen-{rank}",
            )
            process.start()
            child_end.close()
            channels.append(parent_end)
            processes.append(process)
            offset += count
        for rank, channel in enumerate(channels):
            if not channel.poll(LOADGEN_STARTUP_TIMEOUT_S):
                raise RuntimeError(f"load generator {rank} did not start")
            kind, _ = channel.recv()
            if kind != "ready":
                raise RuntimeError(f"load generator {rank} failed to start")
        started = monotonic()
        for channel in channels:
            channel.send(("go", None))
        merged = LoadReport()
        for rank, channel in enumerate(channels):
            if not channel.poll(LOADGEN_DONE_TIMEOUT_S):
                raise RuntimeError(f"load generator {rank} did not finish")
            kind, report = channel.recv()
            if kind != "done":
                raise RuntimeError(f"load generator {rank} failed: {report}")
            merged.merge(report)
        merged.duration_seconds = monotonic() - started
    finally:
        for channel in channels:
            channel.close()
        for process in processes:
            process.join(5.0)
            if process.is_alive():
                process.terminate()
    asyncio.run(_scrape_metrics(host, port, merged))
    return merged


def _git_sha() -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return completed.stdout.strip() or None


def _batch_size_max(metrics: Dict[str, Any]) -> Optional[float]:
    """The coalescing evidence: max observed micro-batch size."""
    entry = metrics.get("service.batch.size")
    if isinstance(entry, dict) and entry.get("type") == "histogram":
        value = entry.get("max")
        if isinstance(value, (int, float)):
            return float(value)
    return None


def scaling_entry(report: LoadReport, shards: int) -> Dict[str, Any]:
    """One point of the scaling curve: SLO + shed + coalescing."""
    return {
        "shards": shards,
        "duration_seconds": report.duration_seconds,
        "requests_total": report.requests_total,
        "requests_ok": report.requests_ok,
        "requests_rejected": report.requests_rejected,
        "requests_rejected_with_retry_after": (
            report.requests_rejected_with_retry_after
        ),
        "requests_failed": report.requests_failed,
        "shed_rate": report.shed_rate,
        "throughput_rps": report.throughput_rps,
        "served_throughput_rps": report.served_throughput_rps,
        "latency_seconds": report.latency_summary(),
        "per_shard": report.shard_summary(),
        "batch_size_max": _batch_size_max(report.server_metrics),
    }


def bench_payload(
    entries: List[Dict[str, Any]],
    options: LoadgenOptions,
    target: str,
    server_metrics: Optional[Dict[str, Any]] = None,
    tracing: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``BENCH_serve.json`` artifact body (schema v4).

    ``entries`` is the scaling curve, one entry per shard count (a
    plain single-server bench is a one-point curve).  The last entry
    is the headline; when a one-shard entry exists too, the measured
    speedup lands in ``speedup_vs_single_shard``.  ``cpu_count``
    records the hardware the curve was measured on — scaling claims
    are meaningless without it.  ``tracing`` (v4) is the audit-trail
    overhead block from :func:`_tracing_overhead_entry`, present when
    the bench measured it.
    """
    if not entries:
        raise ValueError("at least one scaling entry is required")
    headline = entries[-1]
    payload: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at_utc": utc_now_isoformat(),
        "git_sha": _git_sha(),
        "benchmark": "serve",
        "target": target,
        "cpu_count": os.cpu_count(),
        "workload": {
            "requests": options.requests,
            "concurrency": options.concurrency,
            "processes": options.processes,
            "rounds": options.rounds,
            "protocol": options.protocol,
            "topology": options.topology,
            "spread": options.spread,
            "groups": options.groups,
            "seed": options.seed,
        },
        "scaling": entries,
        "headline": headline,
    }
    single = next(
        (entry for entry in entries if entry.get("shards") == 1), None
    )
    if (
        single is not None
        and single is not headline
        and single.get("throughput_rps")
    ):
        payload["speedup_vs_single_shard"] = (
            headline["throughput_rps"] / single["throughput_rps"]
        )
    if tracing is not None:
        payload["tracing"] = tracing
    if server_metrics is not None:
        payload["metrics"] = server_metrics
    return payload


def write_bench_artifact(path: str, payload: Dict[str, Any]) -> None:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def run_bench(
    options: LoadgenOptions,
    host: Optional[str] = None,
    port: Optional[int] = None,
    output: Optional[str] = None,
    server_config: Optional[Any] = None,
    shard_counts: Optional[Sequence[int]] = None,
    trace_sample_rate: Optional[float] = None,
) -> Dict[str, Any]:
    """One full bench: external server if addressed, else self-contained.

    With ``host``/``port`` the load targets an already-running server
    (whatever its shard count — the generator discovers ``/shards``
    itself), producing a one-point curve.  Otherwise a
    :class:`BackgroundServer` (configured by ``server_config``) is
    stood up per entry of ``shard_counts`` (default: the config's own
    ``shards``) on an ephemeral port, loaded, and drained — the full
    sweep becomes the scaling curve.  ``trace_sample_rate`` adds the
    v4 ``tracing`` overhead block (self-contained benches only: the
    comparison needs to restart the server with tracing off, which an
    external target does not allow).  Returns the artifact payload;
    also writes it to ``output`` when given.
    """
    entries: List[Dict[str, Any]] = []
    tracing: Optional[Dict[str, Any]] = None
    if host is not None and port is not None:
        if shard_counts is not None:
            raise ValueError(
                "shard_counts requires a self-contained bench; an external "
                "server's shard count cannot be changed from here"
            )
        if trace_sample_rate is not None:
            raise ValueError(
                "trace_sample_rate requires a self-contained bench; the "
                "overhead comparison restarts the server with tracing off"
            )
        target = f"http://{host}:{port}"
        report = execute_load(host, port, options)
        entries.append(scaling_entry(report, _external_shards(report)))
        metrics = report.server_metrics
    else:
        from .config import ServiceConfig

        base = server_config if server_config is not None else ServiceConfig()
        counts = list(shard_counts) if shard_counts else [base.shards]
        target = f"in-process sweep over shards={counts}"
        metrics = {}
        for shards in counts:
            config = replace(base, port=0, shards=shards)
            with BackgroundServer(config) as background:
                report = execute_load(background.host, background.port, options)
            entries.append(scaling_entry(report, shards))
            metrics = report.server_metrics
        if trace_sample_rate is not None:
            tracing = _tracing_overhead_entry(
                base, counts[-1], options, trace_sample_rate
            )
    payload = bench_payload(
        entries, options, target, server_metrics=metrics, tracing=tracing
    )
    if output:
        write_bench_artifact(output, payload)
    return payload


def _tracing_overhead_entry(
    base: Any,
    shards: int,
    options: LoadgenOptions,
    sample_rate: float,
) -> Dict[str, Any]:
    """Tracing-off vs. tracing-on, same workload, same shard count.

    The baseline run disables sampling and the audit directory
    entirely; the traced run samples at ``sample_rate`` into a
    temporary audit directory (counted, then discarded).  The ratio of
    served p99s is the cost of the audit trail — the number
    EXPERIMENTS.md holds under 10%.
    """
    baseline_config = replace(
        base, port=0, shards=shards, trace_sample_rate=0.0, audit_dir=None
    )
    with BackgroundServer(baseline_config) as background:
        baseline = execute_load(background.host, background.port, options)
    with tempfile.TemporaryDirectory(prefix="repro-audit-") as audit_dir:
        traced_config = replace(
            base,
            port=0,
            shards=shards,
            trace_sample_rate=sample_rate,
            audit_dir=audit_dir,
        )
        with BackgroundServer(traced_config) as background:
            traced = execute_load(background.host, background.port, options)
        audit_records = len(load_audit_dir(audit_dir))
    baseline_p99 = baseline.latency_summary().get("p99")
    traced_p99 = traced.latency_summary().get("p99")
    overhead: Optional[float] = None
    if baseline_p99 and traced_p99 is not None:
        overhead = traced_p99 / baseline_p99 - 1.0
    return {
        "shards": shards,
        "sample_rate": sample_rate,
        "baseline_p99_seconds": baseline_p99,
        "traced_p99_seconds": traced_p99,
        "p99_overhead_ratio": overhead,
        "audit_records": audit_records,
    }


def _external_shards(report: LoadReport) -> int:
    """Best-effort shard count of an external target."""
    shards = report.per_shard_server_metrics or report.shard_counts
    return max(1, len(shards))
