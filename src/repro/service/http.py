"""Hand-rolled HTTP/1.1 over ``asyncio`` streams (zero dependencies).

Just enough of RFC 9112 for a JSON API: request-line + headers +
``Content-Length`` bodies on the way in, status line + headers + body
on the way out, with keep-alive by default and ``Connection: close``
honored.  No chunked transfer encoding, no TLS, no pipelining — the
server reads one request per turn, so a client that pipelines simply
gets its responses in order.

The module also carries the client half (:class:`ClientConnection`,
:func:`request_once`), shared by the load generator, the examples,
and the test suite, so client and server agree on one wire dialect by
construction.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:
    from ..obs.audit import TraceContext

MAX_HEADER_LINE = 8192
MAX_HEADER_COUNT = 100

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request the server refuses, carried as (status, message)."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers: Dict[str, str] = dict(headers or {})


@dataclass
class HttpRequest:
    """One parsed request: method, target path, headers, raw body."""

    method: str
    path: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: The request's audit identity, assigned by the server at the top
    #: of routing (never by the parser — admission owns id assignment).
    trace: Optional["TraceContext"] = None

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Dict[str, Any]:
        """The body decoded as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[HttpRequest]:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` for protocol violations (the caller
    answers with the carried status and closes the connection).
    """
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > MAX_HEADER_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, path, version = line.decode("latin-1").split()
    except ValueError as error:
        raise HttpError(400, "malformed request line") from error
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    headers: Dict[str, str] = {}
    while True:
        header_line = await reader.readline()
        if header_line in (b"\r\n", b"\n"):
            break
        if not header_line:
            raise HttpError(400, "connection closed inside headers")
        if len(header_line) > MAX_HEADER_LINE:
            raise HttpError(400, "header line too long")
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        name, separator, value = header_line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {header_line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as error:
            raise HttpError(400, "malformed Content-Length") from error
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413, f"body of {length} bytes exceeds {max_body_bytes}"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise HttpError(
                    400, "connection closed inside the body"
                ) from error
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked transfer encoding is not supported")
    return HttpRequest(
        method=method, path=path, version=version, headers=headers, body=body
    )


def render_response(
    status: int,
    payload: Dict[str, Any],
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one JSON response (status line, headers, body)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


class ClientConnection:
    """A keep-alive client connection speaking the same dialect.

    One connection issues requests strictly in sequence (HTTP/1.1
    without pipelining); open several connections for concurrency —
    that is exactly what the load generator does.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "ClientConnection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        """Issue one request; returns (status, headers, JSON payload).

        ``headers`` adds extra request headers — how trace context
        (``X-Repro-Request-Id``) crosses the supervisor → shard hop.
        """
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            "Host: repro-service",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            header_line = await self._reader.readline()
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        parsed: Dict[str, Any] = json.loads(raw) if raw else {}
        return status, headers, parsed

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def request_once(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
    """One-shot convenience: open, request, close."""
    connection = await ClientConnection.open(host, port)
    try:
        return await connection.request(method, path, payload, headers)
    finally:
        await connection.close()
