"""Command-line interface: explore the model without writing code.

Subcommands:

* ``simulate`` — evaluate a protocol on a run (exact probabilities);
* ``search``   — worst-run search (the unsafety maximum);
* ``level``    — level / modified-level tables for a run;
* ``validity`` — check the validity condition on input-free probes;
* ``scale-sweep`` — counter-abstraction sweep over process counts
  (``m`` up to 10**6 and beyond; complete graphs, class-uniform
  runs — see DESIGN.md section 15);
* ``experiments`` — delegate to the experiment runner (same as
  ``python -m repro.experiments``);
* ``profile`` — run one experiment with tracing and metrics enabled
  and print the span tree plus a metrics snapshot;
* ``serve`` — run the asyncio evaluation server (JSON endpoints,
  micro-batching, bounded admission queue; see DESIGN.md section 10);
* ``bench-serve`` — drive a server with the load generator and write
  the ``BENCH_serve.json`` latency/throughput artifact;
* ``audit`` — stitch the per-process audit logs a traced server wrote
  (``repro serve --audit-dir DIR``) into one request's span tree.

Observability flags (see DESIGN.md section 8): every evaluating
subcommand takes ``--backend`` / ``--engine-stats`` plus ``--trace
FILE.jsonl`` (span export), ``--metrics FILE.json`` (metrics
snapshot), and ``--log-level LEVEL`` (stdlib logging under the
``repro.*`` hierarchy, to stderr).

Specification mini-language (shared by the flags):

* topology: ``pair``, ``path:M``, ``ring:M``, ``star:M``,
  ``complete:M``, ``grid:RxC``;
* run: ``good``, ``silent``, ``cut:R`` (deliver rounds < R),
  ``chain:B`` (two-general chain broken at B), ``tree``
  (the Lemma A.6 spanning-tree run), ``loss:P:SEED`` (i.i.d. loss);
* protocol: ``S:EPS``, ``A``, ``W:K``, ``M:Q`` (simple-majority
  consensus with quorum fraction Q), ``repeatedA:COPIES:COMBINER``,
  ``never``, ``input-attack``.

Examples::

    python -m repro simulate --topology pair --rounds 10 \
        --protocol S:0.1 --run cut:5
    python -m repro search --topology path:3 --rounds 5 --protocol S:0.2
    python -m repro level --topology star:4 --rounds 4 --run tree
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .adversary.search import worst_case_unsafety
from .analysis.report import Table
from .core.measures import level_profile, modified_level_profile
from .core.metrics import check_validity, validity_probe_runs
from .core.seeding import spawn_random
from .core.run import (
    Run,
    bernoulli_run,
    chain_run,
    good_run,
    round_cut_run,
    silent_run,
    spanning_tree_run,
)
from .core.topology import Topology
from .core.types import Round
from .engine import BACKENDS, Engine
from .obs import (
    LOG_LEVELS,
    MetricsRegistry,
    Obs,
    Tracer,
    render_span_tree,
    set_obs,
    setup_logging,
)
from .protocols.deterministic import InputAttack, NeverAttack
from .protocols.protocol_a import ProtocolA
from .protocols.protocol_m import ProtocolM
from .protocols.protocol_s import ProtocolS
from .protocols.repeated_a import RepeatedA
from .protocols.weak_adversary import ProtocolW
from .staticcheck.cli import add_lint_arguments, run_lint


class SpecError(ValueError):
    """A malformed --topology/--run/--protocol specification."""


def parse_topology(spec: str) -> Topology:
    """Parse the topology mini-language (see module docstring)."""
    name, _, argument = spec.partition(":")
    try:
        if name == "pair":
            return Topology.pair()
        if name == "path":
            return Topology.path(int(argument))
        if name == "ring":
            return Topology.ring(int(argument))
        if name == "star":
            return Topology.star(int(argument))
        if name == "complete":
            return Topology.complete(int(argument))
        if name == "grid":
            rows, _, cols = argument.partition("x")
            return Topology.grid(int(rows), int(cols))
    except (ValueError, TypeError) as error:
        raise SpecError(f"bad topology spec {spec!r}: {error}") from error
    raise SpecError(
        f"unknown topology {spec!r} (try pair, path:M, ring:M, star:M, "
        "complete:M, grid:RxC)"
    )


def parse_run(spec: str, topology: Topology, num_rounds: Round) -> Run:
    """Parse the run mini-language (see module docstring)."""
    name, _, argument = spec.partition(":")
    try:
        if name == "good":
            return good_run(topology, num_rounds)
        if name == "silent":
            return silent_run(topology, num_rounds, list(topology.processes))
        if name == "cut":
            return round_cut_run(topology, num_rounds, int(argument))
        if name == "chain":
            if topology.num_processes != 2:
                raise SpecError("chain runs need the pair topology")
            break_round = None if argument in ("", "none") else int(argument)
            return chain_run(num_rounds, break_round)
        if name == "tree":
            return spanning_tree_run(topology, num_rounds)
        if name == "loss":
            probability_text, _, seed_text = argument.partition(":")
            rng = spawn_random(
                int(seed_text) if seed_text else 0, "cli", "loss-run"
            )
            return bernoulli_run(
                topology, num_rounds, float(probability_text), rng
            )
        if name == "file":
            from .core.serialization import run_from_json

            with open(argument) as handle:
                run = run_from_json(handle.read())
            if run.num_rounds != num_rounds:
                raise SpecError(
                    f"run in {argument!r} has N={run.num_rounds}, "
                    f"but --rounds is {num_rounds}"
                )
            run.validate_for(topology)
            return run
    except SpecError:
        raise
    except (ValueError, TypeError) as error:
        raise SpecError(f"bad run spec {spec!r}: {error}") from error
    raise SpecError(
        f"unknown run {spec!r} (try good, silent, cut:R, chain:B, tree, "
        "loss:P[:SEED], file:PATH)"
    )


def parse_protocol(spec: str, num_rounds: Round):
    """Parse the protocol mini-language (see module docstring)."""
    name, _, argument = spec.partition(":")
    try:
        if name in ("S", "s"):
            return ProtocolS(epsilon=float(argument) if argument else 1.0 / num_rounds)
        if name in ("A", "a"):
            return ProtocolA(num_rounds)
        if name in ("W", "w"):
            threshold = int(argument) if argument else max(1, num_rounds // 3)
            return ProtocolW(threshold)
        if name in ("M", "m"):
            return ProtocolM(quorum=float(argument) if argument else 0.5)
        if name == "repeatedA":
            copies_text, _, combiner = argument.partition(":")
            return RepeatedA(
                num_rounds,
                copies=int(copies_text),
                combiner=combiner or "any",
            )
        if name == "never":
            return NeverAttack()
        if name == "input-attack":
            return InputAttack()
    except SpecError:
        raise
    except (ValueError, TypeError) as error:
        raise SpecError(f"bad protocol spec {spec!r}: {error}") from error
    raise SpecError(
        f"unknown protocol {spec!r} (try S:EPS, A, W:K, M:Q, "
        "repeatedA:COPIES:COMBINER, never, input-attack)"
    )


def print_engine_stats(engine: Engine) -> None:
    """Render the engine instrumentation table."""
    stats = engine.stats
    table = Table(
        title="Engine statistics",
        columns=["quantity", "value"],
        caption=f"backend: {engine.backend}",
    )
    table.add_row("runs evaluated", stats.runs_evaluated)
    table.add_row("reference evaluations", stats.reference_evaluations)
    table.add_row("vectorized evaluations", stats.vectorized_evaluations)
    table.add_row("meanfield evaluations", stats.meanfield_evaluations)
    table.add_row("batch calls", stats.batch_calls)
    table.add_row("cache hits", stats.cache_hits)
    table.add_row("cache misses", stats.cache_misses)
    table.add_row("cache hit rate", stats.cache_hit_rate)
    table.add_row("wall time (s)", stats.wall_time_seconds)
    print(table.render())


def _print_engine_stats(args, engine: Engine) -> None:
    """Render the engine instrumentation table when requested."""
    if getattr(args, "engine_stats", False):
        print_engine_stats(engine)


def _setup_obs(args, exec_trace: bool = False) -> Obs:
    """A fresh per-invocation observability bundle from the flags.

    Installed process-wide so module-level consumers (the fast
    estimators, the default engine) report into the same registry the
    exports drain.
    """
    if getattr(args, "log_level", None):
        setup_logging(args.log_level)
    obs = Obs(
        metrics=MetricsRegistry(),
        tracer=Tracer(enabled=getattr(args, "trace", None) is not None),
        exec_trace=exec_trace and getattr(args, "trace", None) is not None,
    )
    set_obs(obs)
    return obs


def _finish_obs(args, obs: Obs) -> None:
    """Write the --trace / --metrics exports, if requested."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        obs.tracer.export_jsonl(trace_path)
        print(f"trace written to {trace_path}")
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        obs.metrics.export_json(metrics_path)
        print(f"metrics written to {metrics_path}")


def _metrics_table(registry: MetricsRegistry) -> Table:
    """A compact rendering of a metrics snapshot."""
    table = Table(title="Metrics snapshot", columns=["metric", "value"])
    for name, payload in registry.snapshot().items():
        if payload["type"] == "histogram":
            table.add_row(
                name,
                "count={count} sum={sum:.4f}s min={min} max={max}".format(
                    count=payload["count"],
                    sum=payload["sum"],
                    min=_format_seconds(payload["min"]),
                    max=_format_seconds(payload["max"]),
                ),
            )
        else:
            table.add_row(name, payload["value"])
    return table


def _format_seconds(value) -> str:
    return "-" if value is None else f"{value:.2e}s"


def _cmd_simulate(args) -> int:
    topology = parse_topology(args.topology)
    protocol = parse_protocol(args.protocol, args.rounds)
    run = parse_run(args.run, topology, args.rounds)
    # For a single run the interesting trace is the per-round protocol
    # events (levels, deliveries, fire decisions), so --trace implies
    # the execution trace here.
    obs = _setup_obs(args, exec_trace=True)
    engine = Engine(backend=args.backend, obs=obs)
    result = engine.evaluate(protocol, topology, run)
    table = Table(
        title=f"{protocol.name} on {run.describe()}",
        columns=["quantity", "value"],
        caption=f"backend: {result.method}",
    )
    table.add_row("P[total attack]  (liveness)", result.pr_total_attack)
    table.add_row("P[partial attack] (unsafety)", result.pr_partial_attack)
    table.add_row("P[no attack]", result.pr_no_attack)
    for process in topology.processes:
        table.add_row(f"P[process {process} attacks]", result.pr_attack_by(process))
    print(table.render())
    _print_engine_stats(args, engine)
    _finish_obs(args, obs)
    return 0


def _cmd_search(args) -> int:
    topology = parse_topology(args.topology)
    protocol = parse_protocol(args.protocol, args.rounds)
    obs = _setup_obs(args)
    engine = Engine(backend=args.backend, obs=obs)
    result = worst_case_unsafety(
        protocol, topology, args.rounds, engine=engine
    )
    if args.save_witness and result.run is not None:
        from .core.serialization import run_to_json

        with open(args.save_witness, "w") as handle:
            handle.write(run_to_json(result.run) + "\n")
    table = Table(
        title=f"Worst-run search: {protocol.name} on {topology.describe()}",
        columns=["quantity", "value"],
    )
    table.add_row("worst P[partial attack]", result.value)
    table.add_row("runs examined", result.runs_examined)
    table.add_row("certification", result.certification)
    table.add_row("worst run", result.run.describe() if result.run else "-")
    if args.save_witness:
        table.add_row("witness saved to", args.save_witness)
    print(table.render())
    _print_engine_stats(args, engine)
    _finish_obs(args, obs)
    return 0


def _cmd_level(args) -> int:
    topology = parse_topology(args.topology)
    run = parse_run(args.run, topology, args.rounds)
    levels = level_profile(run, topology.num_processes)
    mlevels = modified_level_profile(run, topology.num_processes)
    table = Table(
        title=f"Information levels on {run.describe()}",
        columns=["process", "L_i(R)", "ML_i(R)"],
        caption=(
            f"L(R) = {levels.run_level()}, ML(R) = {mlevels.run_level()}"
        ),
    )
    for process in topology.processes:
        table.add_row(
            process, levels.final_level(process), mlevels.final_level(process)
        )
    print(table.render())
    return 0


def _cmd_validity(args) -> int:
    topology = parse_topology(args.topology)
    protocol = parse_protocol(args.protocol, args.rounds)
    obs = _setup_obs(args)
    rng = spawn_random(args.seed, "cli", "validity")
    probes = validity_probe_runs(topology, args.rounds, rng)
    with obs.tracer.span(
        "cli.validity", protocol=protocol.name, probes=len(probes)
    ):
        ok, witness = check_validity(protocol, topology, probes, rng=rng)
        # Complementary probabilistic check through the engine: on an
        # input-free run validity is exactly Pr[no attack] = 1, so the
        # worst probe's Pr[any attack] should be 0.
        engine = Engine(backend=args.backend, obs=obs)
        results = engine.evaluate_many(protocol, topology, probes)
    worst_attack = max(1.0 - result.pr_no_attack for result in results)
    if ok:
        print(f"{protocol.name}: validity holds on {len(probes)} probe runs")
        print(f"max P[any attack] over probes: {worst_attack:g} (exact)")
        _print_engine_stats(args, engine)
        _finish_obs(args, obs)
        return 0
    print(f"{protocol.name}: VALIDITY VIOLATED on {witness.describe()}")
    _print_engine_stats(args, engine)
    _finish_obs(args, obs)
    return 1


def _parse_process_counts(text: str) -> List[int]:
    """Parse a comma-separated list of process counts (``10^K`` ok)."""
    counts: List[int] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            if "^" in token:
                base_text, _, exponent_text = token.partition("^")
                counts.append(int(base_text) ** int(exponent_text))
            else:
                counts.append(int(token))
        except ValueError as error:
            raise SpecError(
                f"bad process count {token!r}: {error}"
            ) from error
    if not counts:
        raise SpecError(f"no process counts in {text!r}")
    return counts


def _cmd_scale_sweep(args) -> int:
    from .meanfield import (
        CounterAbstractionError,
        scaled_spec,
        unsafety_family,
    )

    protocol = parse_protocol(args.protocol, args.rounds)
    counts = _parse_process_counts(args.processes)
    obs = _setup_obs(args)
    engine = Engine(backend=args.backend, obs=obs)
    table = Table(
        title=(
            f"{protocol.name} on K_m, N={args.rounds} "
            f"(counter abstraction)"
        ),
        columns=[
            "m",
            "P[TA] good",
            "max P[PA] (family)",
            "L(R_good)",
            "ML(R_good)",
            "wall (ms)",
        ],
        caption=(
            "parametric counter kernels: cost is independent of m "
            "(run `repro simulate --backend meanfield` for concrete runs)"
        ),
    )
    needs_coordinator = type(protocol) is ProtocolS
    with obs.tracer.span(
        "cli.scale_sweep", protocol=protocol.name, points=len(counts)
    ):
        for num_processes in counts:
            started = time.perf_counter()
            try:
                good = engine.evaluate_scaled(
                    protocol,
                    scaled_spec(
                        num_processes,
                        args.rounds,
                        "good",
                        distinguished=needs_coordinator,
                    ),
                )
                worst, _ = unsafety_family(
                    protocol, num_processes, args.rounds, engine=engine
                )
            except CounterAbstractionError as error:
                print(f"m={num_processes}: {error}", file=sys.stderr)
                return 1
            elapsed_ms = (time.perf_counter() - started) * 1e3
            table.add_row(
                num_processes,
                good.pr_total_attack,
                worst,
                good.level,
                good.modified_level if needs_coordinator else "-",
                f"{elapsed_ms:.2f}",
            )
    print(table.render())
    _print_engine_stats(args, engine)
    _finish_obs(args, obs)
    return 0


def _cmd_experiments(args) -> int:
    from .experiments.__main__ import main as experiments_main

    forwarded: List[str] = list(args.ids)
    if args.all:
        forwarded.append("--all")
    forwarded.extend(["--scale", args.scale, "--seed", str(args.seed)])
    forwarded.extend(["--backend", args.backend])
    if args.engine_stats:
        forwarded.append("--engine-stats")
    if args.trace:
        forwarded.extend(["--trace", args.trace])
    if args.metrics:
        forwarded.extend(["--metrics", args.metrics])
    if args.log_level:
        forwarded.extend(["--log-level", args.log_level])
    return experiments_main(forwarded)


def _cmd_profile(args) -> int:
    from .experiments import run_experiment
    from .experiments.common import Config

    if args.log_level:
        setup_logging(args.log_level)
    config = Config(
        scale=args.scale,
        seed=args.seed,
        backend=args.backend,
        tracing=True,
        trace_path=args.trace,
        metrics_path=args.metrics,
        exec_trace=args.exec_trace,
    )
    obs = config.obs()
    set_obs(obs)
    started = time.perf_counter()
    try:
        report = run_experiment(args.experiment, config)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    status = "PASS" if report.passed else "FAIL"
    print(
        f"== Profile: [{report.experiment_id}] {report.title} — {status} "
        f"in {elapsed:.2f}s ==\n"
    )
    print(render_span_tree(obs.tracer))
    print()
    print(_metrics_table(obs.metrics).render())
    _print_engine_stats(args, config.engine())
    _finish_obs(args, obs)
    return 0 if report.passed else 1


def _cmd_serve(args) -> int:
    import asyncio

    from .service import ServiceConfig
    from .service.server import serve as serve_async

    if args.log_level:
        setup_logging(args.log_level)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        seed=args.seed,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit,
        workers=args.workers,
        deadline_ms=args.deadline_ms,
        drain_timeout_s=args.drain_timeout,
        shards=args.shards,
        cache_snapshot_dir=args.cache_snapshot_dir,
        debug=args.debug_endpoints,
        trace_path=args.trace,
        metrics_path=args.metrics,
        audit_dir=args.audit_dir,
        trace_sample_rate=args.trace_sample_rate,
        slow_request_ms=args.slow_request_ms,
        log_level=args.log_level or "info",
    )
    obs = Obs(
        metrics=MetricsRegistry(),
        tracer=Tracer(enabled=args.trace is not None),
    )
    set_obs(obs)
    try:
        asyncio.run(serve_async(config, obs=obs))
    except KeyboardInterrupt:
        pass  # SIGINT before the loop installed its handler
    return 0


def _parse_shard_counts(text: str) -> List[int]:
    """``"1,4"`` → ``[1, 4]`` (the bench-serve sweep specification)."""
    try:
        counts = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SpecError(f"--shards expects a comma list of ints, got {text!r}")
    if not counts or any(count < 1 for count in counts):
        raise SpecError(f"--shards entries must be >= 1, got {text!r}")
    return counts


def _cmd_bench_serve(args) -> int:
    from .service import LoadgenOptions, ServiceConfig
    from .service.loadgen import run_bench

    options = LoadgenOptions(
        requests=args.requests,
        concurrency=args.concurrency,
        processes=args.processes,
        rounds=args.rounds,
        protocol=args.protocol,
        spread=args.spread,
        groups=args.groups,
        seed=args.seed,
    )
    shard_counts = _parse_shard_counts(args.shards)
    server_config = None
    sweep: Optional[List[int]] = None
    if args.host is None or args.port is None:
        sweep = shard_counts
        server_config = ServiceConfig(
            port=0,
            backend=args.backend,
            workers=args.workers,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_limit=args.queue_limit,
            seed=args.seed,
        )
    elif args.shards != "1":
        print(
            "--shards is ignored against an external server "
            "(its shard count is discovered, not configured)",
            file=sys.stderr,
        )
    sample_rate: Optional[float] = None
    if sweep is not None and args.trace_sample_rate > 0:
        sample_rate = args.trace_sample_rate
    payload = run_bench(
        options,
        host=args.host,
        port=args.port,
        output=args.output,
        server_config=server_config,
        shard_counts=sweep,
        trace_sample_rate=sample_rate,
    )
    for entry in payload["scaling"]:
        latency = entry["latency_seconds"]
        table = Table(
            title=f"Serving benchmark — {entry['shards']} shard(s)",
            columns=["quantity", "value"],
            caption=f"target: {payload['target']}",
        )
        table.add_row("requests (ok/shed/failed)", "{}/{}/{}".format(
            entry["requests_ok"],
            entry["requests_rejected"],
            entry["requests_failed"],
        ))
        table.add_row("duration (s)", entry["duration_seconds"])
        table.add_row("throughput (req/s)", entry["throughput_rps"])
        table.add_row("shed rate", entry["shed_rate"])
        for name in ("p50", "p95", "p99", "mean", "max"):
            if name in latency:
                table.add_row(f"served latency {name} (s)", latency[name])
        if entry.get("batch_size_max") is not None:
            table.add_row("max coalesced batch", entry["batch_size_max"])
        print(table.render())
        print()
    if "speedup_vs_single_shard" in payload:
        print(
            f"speedup vs single shard: "
            f"{payload['speedup_vs_single_shard']:.2f}x "
            f"(on {payload['cpu_count']} CPU(s))"
        )
    tracing = payload.get("tracing")
    if tracing is not None:
        ratio = tracing.get("p99_overhead_ratio")
        print(
            "tracing overhead at sample rate "
            f"{tracing['sample_rate']:g}: "
            + (f"{ratio * 100:+.1f}% p99" if ratio is not None else "n/a")
            + f" ({tracing['audit_records']} audit records)"
        )
    if args.output:
        print(f"artifact written to {args.output}")
    return 0


def _cmd_audit(args) -> int:
    import json

    from .obs.audit import (
        load_audit_dir,
        missing_stages,
        render_request_tree,
        stitch_request,
    )

    try:
        records = load_audit_dir(args.log_dir)
    except OSError as error:
        print(f"cannot read audit logs in {args.log_dir!r}: {error}",
              file=sys.stderr)
        return 1
    tree = stitch_request(records, args.request_id)
    if not tree.spans:
        print(
            f"no audit records for request {args.request_id!r} under "
            f"{args.log_dir!r} ({len(records)} records scanned)",
            file=sys.stderr,
        )
        return 1
    missing = missing_stages(tree)
    if args.json:
        print(
            json.dumps(
                {
                    "request_id": tree.request_id,
                    "status": tree.status,
                    "processes": tree.processes,
                    "missing_stages": missing,
                    "spans": tree.spans,
                },
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
    else:
        print(render_request_tree(tree))
    if args.expect_complete and missing:
        print(
            f"request tree incomplete: missing {', '.join(missing)}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Randomized coordinated attack (Varghese & Lynch, PODC 1992) "
            "— reproduction toolkit."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub, run_flag=True, protocol_flag=True):
        sub.add_argument("--topology", default="pair", help="topology spec")
        sub.add_argument(
            "--rounds", type=int, default=8, help="message rounds N"
        )
        if run_flag:
            sub.add_argument("--run", default="good", help="run spec")
        if protocol_flag:
            sub.add_argument(
                "--protocol", default="S", help="protocol spec"
            )

    def add_engine_flags(sub):
        sub.add_argument(
            "--backend",
            choices=list(BACKENDS),
            default="auto",
            help="evaluation engine backend (default: auto)",
        )
        sub.add_argument(
            "--engine-stats",
            action="store_true",
            help="print engine instrumentation after the results",
        )

    def add_obs_flags(sub):
        sub.add_argument(
            "--trace",
            metavar="FILE.jsonl",
            default=None,
            help="record spans and export them as JSONL to FILE",
        )
        sub.add_argument(
            "--metrics",
            metavar="FILE.json",
            default=None,
            help="export the metrics snapshot as JSON to FILE",
        )
        sub.add_argument(
            "--log-level",
            choices=list(LOG_LEVELS),
            default=None,
            help="enable repro.* logging at this level (stderr)",
        )

    simulate = subparsers.add_parser(
        "simulate", help="evaluate a protocol on a run"
    )
    add_common(simulate)
    add_engine_flags(simulate)
    add_obs_flags(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    search = subparsers.add_parser(
        "search", help="worst-run search for unsafety"
    )
    add_common(search, run_flag=False)
    search.add_argument(
        "--save-witness",
        metavar="PATH",
        default=None,
        help="write the worst run found as JSON to PATH",
    )
    add_engine_flags(search)
    add_obs_flags(search)
    search.set_defaults(handler=_cmd_search)

    level = subparsers.add_parser(
        "level", help="level / modified-level tables for a run"
    )
    add_common(level, protocol_flag=False)
    level.set_defaults(handler=_cmd_level)

    validity = subparsers.add_parser(
        "validity", help="check validity on input-free probe runs"
    )
    add_common(validity, run_flag=False)
    validity.add_argument("--seed", type=int, default=0)
    add_engine_flags(validity)
    add_obs_flags(validity)
    validity.set_defaults(handler=_cmd_validity)

    scale_sweep = subparsers.add_parser(
        "scale-sweep",
        help=(
            "counter-abstraction sweep over process counts "
            "(complete graphs; m up to 10^6 and beyond)"
        ),
    )
    scale_sweep.add_argument(
        "--processes",
        default="10^3,10^4,10^5,10^6",
        help="comma-separated process counts (10^K accepted)",
    )
    scale_sweep.add_argument(
        "--rounds", type=int, default=8, help="message rounds N"
    )
    scale_sweep.add_argument(
        "--protocol", default="S:0.015625", help="protocol spec (S/W/M)"
    )
    add_engine_flags(scale_sweep)
    add_obs_flags(scale_sweep)
    scale_sweep.set_defaults(handler=_cmd_scale_sweep)

    experiments = subparsers.add_parser(
        "experiments", help="run reproduction experiments (E1..E17)"
    )
    experiments.add_argument("ids", nargs="*", help="experiment ids")
    experiments.add_argument("--all", action="store_true")
    experiments.add_argument(
        "--scale", choices=["quick", "full"], default="quick"
    )
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument(
        "--backend", choices=list(BACKENDS), default="auto"
    )
    experiments.add_argument(
        "--engine-stats",
        action="store_true",
        help="print engine instrumentation after each report",
    )
    add_obs_flags(experiments)
    experiments.set_defaults(handler=_cmd_experiments)

    profile = subparsers.add_parser(
        "profile",
        help=(
            "run one experiment with tracing + metrics and print the "
            "span tree"
        ),
    )
    profile.add_argument("experiment", help="experiment id (e.g. e3)")
    profile.add_argument(
        "--scale", choices=["quick", "full"], default="quick"
    )
    profile.add_argument(
        "--quick",
        dest="scale",
        action="store_const",
        const="quick",
        help="shorthand for --scale quick (the default)",
    )
    profile.add_argument(
        "--full",
        dest="scale",
        action="store_const",
        const="full",
        help="shorthand for --scale full",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--exec-trace",
        action="store_true",
        help="also record per-round protocol events (expensive)",
    )
    add_engine_flags(profile)
    add_obs_flags(profile)
    profile.set_defaults(handler=_cmd_profile)

    def add_service_knobs(sub):
        sub.add_argument(
            "--backend", choices=list(BACKENDS), default="auto"
        )
        sub.add_argument(
            "--max-batch",
            type=int,
            default=32,
            help="micro-batcher: flush once this many requests coalesce",
        )
        sub.add_argument(
            "--max-wait-ms",
            type=float,
            default=2.0,
            help="micro-batcher: batch-collection window in milliseconds",
        )
        sub.add_argument(
            "--queue-limit",
            type=int,
            default=64,
            help="admission queue bound (overflow answers 429)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=0,
            help=(
                "process-pool workers for Monte-Carlo/experiment "
                "requests (0 = inline thread)"
            ),
        )
        sub.add_argument("--seed", type=int, default=0)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the asyncio evaluation server (see DESIGN.md section 10)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="listen port (0 picks a free one and prints it)",
    )
    add_service_knobs(serve_parser)
    serve_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=30_000.0,
        help="per-request deadline (expiry answers 504)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "engine shard processes behind a consistent-hash supervisor "
            "(1 = classic single-process server; see DESIGN.md section 11)"
        ),
    )
    serve_parser.add_argument(
        "--cache-snapshot-dir",
        default=None,
        help=(
            "directory for warm-start cache snapshots: each shard exports "
            "shard-<i>.cache on drain and re-imports it on boot"
        ),
    )
    serve_parser.add_argument(
        "--debug-endpoints",
        action="store_true",
        help="enable the /v1/_sleep test hook (never in production)",
    )
    serve_parser.add_argument(
        "--audit-dir",
        default=None,
        help=(
            "directory for per-process request audit logs "
            "(audit-<process>.jsonl; stitch them with `repro audit`)"
        ),
    )
    serve_parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        help=(
            "fraction of requests audited, decided by a deterministic "
            "hash of the request id (client-supplied ids are always "
            "audited); default 1.0"
        ),
    )
    serve_parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=1_000.0,
        help="log requests slower than this at WARNING with their id",
    )
    add_obs_flags(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    bench_serve = subparsers.add_parser(
        "bench-serve",
        help=(
            "load-test a server and write the BENCH_serve.json artifact "
            "(self-contained unless --host/--port target a live one)"
        ),
    )
    bench_serve.add_argument(
        "--host", default=None, help="target a running server"
    )
    bench_serve.add_argument("--port", type=int, default=None)
    bench_serve.add_argument("--requests", type=int, default=200)
    bench_serve.add_argument("--concurrency", type=int, default=16)
    bench_serve.add_argument(
        "--processes",
        type=int,
        default=1,
        help="load-generator processes the workload is split across",
    )
    bench_serve.add_argument("--rounds", type=int, default=8)
    bench_serve.add_argument(
        "--protocol", default="S:0.25", help="evaluated protocol spec"
    )
    bench_serve.add_argument(
        "--spread",
        action="store_true",
        help="vary the protocol per request (defeats coalescing)",
    )
    bench_serve.add_argument(
        "--groups",
        type=int,
        default=1,
        help=(
            "rotate across this many distinct batch groups (coalescable "
            "within each; gives a sharded server routing entropy)"
        ),
    )
    bench_serve.add_argument(
        "--shards",
        default="1",
        help=(
            "comma list of shard counts to sweep for the scaling curve "
            "(self-contained benches only), e.g. 1,2,4"
        ),
    )
    add_service_knobs(bench_serve)
    bench_serve.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.1,
        help=(
            "also measure tracing overhead: a tracing-off vs tracing-on "
            "pair of runs at this sample rate lands in the artifact's "
            "'tracing' block (self-contained benches only; 0 skips it)"
        ),
    )
    bench_serve.add_argument(
        "--output",
        default="benchmarks/results/BENCH_serve.json",
        help="artifact path (empty string skips writing)",
    )
    bench_serve.set_defaults(handler=_cmd_bench_serve)

    audit = subparsers.add_parser(
        "audit",
        help=(
            "stitch per-process audit logs into one request's span tree "
            "(admission -> route -> shard -> batch -> engine -> response)"
        ),
    )
    audit.add_argument("request_id", help="the request id to reconstruct")
    audit.add_argument(
        "--log-dir",
        default="audit",
        help="the --audit-dir the server wrote (default: audit)",
    )
    audit.add_argument(
        "--json",
        action="store_true",
        help="emit the stitched spans as JSON instead of the tree",
    )
    audit.add_argument(
        "--expect-complete",
        action="store_true",
        help="exit 1 unless every required stage is present",
    )
    audit.set_defaults(handler=_cmd_audit)

    lint = subparsers.add_parser(
        "lint",
        help="run the repo-aware static analyzer (rules RC001-RC005)",
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=run_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except SpecError as error:
        parser.error(str(error))
        return 2  # unreachable; parser.error exits
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head,
        # less q): not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
