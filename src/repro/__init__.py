"""repro — reproduction of Varghese & Lynch, PODC 1992.

"A Tradeoff Between Safety and Liveness for Randomized Coordinated
Attack Protocols": randomized synchronous protocols for coordinated
attack over links controlled by an adversary, the tradeoff
``L/U <= ~N`` between liveness and worst-case disagreement, and the
optimal Protocol S.

Quickstart::

    from repro import Topology, ProtocolS, good_run, evaluate

    topology = Topology.pair()
    protocol = ProtocolS(epsilon=0.1)          # agree with error <= 10%
    run = good_run(topology, num_rounds=10)    # nothing is lost
    result = evaluate(protocol, topology, run) # exact probabilities
    print(result.pr_total_attack)              # -> 1.0

Packages:

* :mod:`repro.core`        — model, simulator, measures, probability
* :mod:`repro.protocols`   — Protocols A, S, W, variants, baselines
* :mod:`repro.adversary`   — strong/weak adversaries, worst-run search
* :mod:`repro.analysis`    — theorem formulas, statistics, reports
* :mod:`repro.experiments` — one runner per reproduced claim (E1-E10)
"""

from .adversary import (
    StrongAdversary,
    WeakAdversary,
    estimate_against_weak_adversary,
    exhaustive_search,
    family_search,
    worst_case_unsafety,
)
from .analysis import (
    ExperimentReport,
    Table,
    first_lower_bound,
    required_rounds,
    s_liveness,
    tradeoff_ratio,
    usual_case_assumption,
)
from .core import (
    EventProbabilities,
    Execution,
    Run,
    Topology,
    causally_independent,
    chain_run,
    clip,
    decide,
    evaluate,
    execute,
    flows_to,
    good_run,
    level_profile,
    liveness,
    modified_level_profile,
    round_cut_run,
    run_level,
    run_modified_level,
    silent_run,
    spanning_tree_run,
    unsafety_on_run,
)
from .experiments import Config, run_all, run_experiment
from .protocols import (
    ProtocolA,
    ProtocolS,
    ProtocolW,
    RepeatedA,
)

__version__ = "1.0.0"

__all__ = [
    "Config",
    "EventProbabilities",
    "Execution",
    "ExperimentReport",
    "ProtocolA",
    "ProtocolS",
    "ProtocolW",
    "RepeatedA",
    "Run",
    "StrongAdversary",
    "Table",
    "Topology",
    "WeakAdversary",
    "__version__",
    "causally_independent",
    "chain_run",
    "clip",
    "decide",
    "estimate_against_weak_adversary",
    "evaluate",
    "execute",
    "exhaustive_search",
    "family_search",
    "first_lower_bound",
    "flows_to",
    "good_run",
    "level_profile",
    "liveness",
    "modified_level_profile",
    "required_rounds",
    "round_cut_run",
    "run_all",
    "run_experiment",
    "run_level",
    "run_modified_level",
    "s_liveness",
    "silent_run",
    "spanning_tree_run",
    "tradeoff_ratio",
    "unsafety_on_run",
    "usual_case_assumption",
    "worst_case_unsafety",
]
