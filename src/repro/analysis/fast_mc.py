"""Two-general weak-adversary estimation (compatibility surface).

The numpy kernels that used to live here are now the pair-topology
fast paths of the evaluation engine — see
:mod:`repro.engine.vectorized`, which also generalizes the counting
recurrence to arbitrary topologies.  This module keeps the historical
public API (used by E8, the benchmarks, and the §8 studies) as thin
wrappers so existing callers and the equivalence tests in
``tests/analysis/test_fast_mc.py`` are undisturbed.

The wrappers pin ``float64`` delivery sampling, which reproduces the
historical estimates bit-for-bit; the engine's own sweeps default to
``float32`` draws (a Bernoulli threshold does not need 53 bits).
"""

from __future__ import annotations

import numpy as np

from ..adversary.weak import WeakAdversaryEstimate
from ..core.seeding import spawn_generator
from ..core.types import Round
from ..obs import get_obs
from ..engine.vectorized import (
    PairCounts,
    pair_protocol_s_weak_estimate,
    pair_protocol_w_weak_estimate,
    sample_pair_deliveries,
    simulate_pair_counts,
    simulate_pair_counts_valid_gated,
)

__all__ = [
    "PairCounts",
    "simulate_pair_counts",
    "fast_protocol_s_weak_estimate",
    "fast_protocol_w_weak_estimate",
]

# Back-compat alias: the valid-gated kernel was private here.
_simulate_pair_counts_valid_gated = simulate_pair_counts_valid_gated


def _sample_deliveries(
    num_runs: int,
    num_rounds: Round,
    loss_probability: float,
    rng: np.random.Generator,
):
    return sample_pair_deliveries(
        num_runs, num_rounds, loss_probability, rng, dtype=np.float64
    )


def fast_protocol_s_weak_estimate(
    num_rounds: Round,
    epsilon: float,
    loss_probability: float,
    samples: int = 100_000,
    seed: int = 0,
) -> WeakAdversaryEstimate:
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol S under i.i.d. loss.

    Per sampled run the probabilities are *exact* (the closed form in
    threshold space); only the run draw is sampled — identical
    semantics to
    :func:`repro.adversary.weak.estimate_against_weak_adversary` with
    ``ProtocolS``, at numpy speed.
    """
    obs = get_obs()
    with obs.tracer.span(
        "mc.pair_fast_estimate", protocol="S", samples=samples
    ):
        obs.metrics.counter("mc.trials").inc(samples)
        return pair_protocol_s_weak_estimate(
            num_rounds,
            epsilon,
            loss_probability,
            samples,
            spawn_generator(seed, "fast-mc", "protocol-s"),
            dtype=np.float64,
        )


def fast_protocol_w_weak_estimate(
    num_rounds: Round,
    threshold: int,
    loss_probability: float,
    samples: int = 100_000,
    seed: int = 0,
) -> WeakAdversaryEstimate:
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol W under i.i.d. loss.

    Protocol W's counting is valid-gated (no rfire), which on the pair
    topology is the same recurrence with process 2's rfire gate forced
    open.
    """
    obs = get_obs()
    with obs.tracer.span(
        "mc.pair_fast_estimate", protocol="W", samples=samples
    ):
        obs.metrics.counter("mc.trials").inc(samples)
        return pair_protocol_w_weak_estimate(
            num_rounds,
            threshold,
            loss_probability,
            samples,
            spawn_generator(seed, "fast-mc", "protocol-w"),
            dtype=np.float64,
        )
