"""Vectorized weak-adversary estimation for two generals (numpy).

The weak-adversary sweeps (experiment E8, the §8 studies) evaluate
Protocol S or W on many thousands of i.i.d.-loss runs.  On the pair
topology the Figure 1 dynamics collapse to a two-variable recurrence —
on receiving the peer's previous count ``c_j >= 1``, a counting
process jumps to ``max(c_i, c_j + 1)`` (with ``m = 2`` the ``seen``
set fills instantly) — which vectorizes across runs with numpy.

The reduction is validated against the generic simulator in
``tests/analysis/test_fast_mc.py`` (exact agreement on random runs and
on the estimates themselves); the generic path remains the reference
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..adversary.weak import WeakAdversaryEstimate
from ..core.types import Round


@dataclass(frozen=True)
class PairCounts:
    """Vectorized final states for a batch of two-general runs."""

    count_1: np.ndarray
    count_2: np.ndarray
    rfire_heard_2: np.ndarray  # process 1 always knows rfire


def simulate_pair_counts(
    delivered_1_to_2: np.ndarray,
    delivered_2_to_1: np.ndarray,
    input_1: bool = True,
    input_2: bool = True,
) -> PairCounts:
    """Run the m = 2 counting recurrence over a batch of runs.

    ``delivered_x_to_y`` are boolean arrays of shape
    ``(num_runs, num_rounds)``: whether the round-``r`` message on that
    directed link is delivered.  Returns the final counts (which equal
    the modified levels, Lemma 6.4) and whether process 2 ever heard
    ``rfire``.
    """
    if delivered_1_to_2.shape != delivered_2_to_1.shape:
        raise ValueError("delivery matrices must have identical shape")
    num_runs, num_rounds = delivered_1_to_2.shape
    c1 = np.zeros(num_runs, dtype=np.int64)
    c2 = np.zeros(num_runs, dtype=np.int64)
    v1 = np.full(num_runs, bool(input_1))
    v2 = np.full(num_runs, bool(input_2))
    f2 = np.zeros(num_runs, dtype=bool)
    c1[v1] = 1  # the coordinator holds rfire from the start
    for round_number in range(num_rounds):
        d12 = delivered_1_to_2[:, round_number]
        d21 = delivered_2_to_1[:, round_number]
        prev_c1 = c1.copy()
        prev_c2 = c2.copy()
        prev_v1 = v1.copy()
        prev_v2 = v2.copy()
        v1 = v1 | (d21 & prev_v2)
        v2 = v2 | (d12 & prev_v1)
        f2 = f2 | d12
        c1 = np.where((c1 == 0) & v1, 1, c1)
        c2 = np.where((c2 == 0) & v2 & f2, 1, c2)
        c1 = np.where(d21 & (prev_c2 >= 1), np.maximum(c1, prev_c2 + 1), c1)
        c2 = np.where(d12 & (prev_c1 >= 1), np.maximum(c2, prev_c1 + 1), c2)
    return PairCounts(count_1=c1, count_2=c2, rfire_heard_2=f2)


def _sample_deliveries(
    num_runs: int,
    num_rounds: Round,
    loss_probability: float,
    rng: np.random.Generator,
):
    keep = 1.0 - loss_probability
    d12 = rng.random((num_runs, num_rounds)) < keep
    d21 = rng.random((num_runs, num_rounds)) < keep
    return d12, d21


def fast_protocol_s_weak_estimate(
    num_rounds: Round,
    epsilon: float,
    loss_probability: float,
    samples: int = 100_000,
    seed: int = 0,
) -> WeakAdversaryEstimate:
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol S under i.i.d. loss.

    Per sampled run the probabilities are *exact* (the closed form in
    threshold space); only the run draw is sampled — identical
    semantics to
    :func:`repro.adversary.weak.estimate_against_weak_adversary` with
    ``ProtocolS``, at numpy speed.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must be in (0, 1]")
    rng = np.random.default_rng(seed)
    d12, d21 = _sample_deliveries(samples, num_rounds, loss_probability, rng)
    counts = simulate_pair_counts(d12, d21)
    t = 1.0 / epsilon
    a1 = counts.count_1.astype(np.float64)
    a2 = np.where(counts.rfire_heard_2, counts.count_2, 0).astype(np.float64)
    pr1 = np.minimum(1.0, a1 / t)
    pr2 = np.minimum(1.0, a2 / t)
    pr_ta = np.minimum(pr1, pr2)
    pr_pa = np.abs(pr1 - pr2)
    return WeakAdversaryEstimate(
        expected_liveness=float(pr_ta.mean()),
        expected_unsafety=float(pr_pa.mean()),
        disagreement_runs=int(np.count_nonzero(pr_pa > 0)),
        samples=samples,
    )


def fast_protocol_w_weak_estimate(
    num_rounds: Round,
    threshold: int,
    loss_probability: float,
    samples: int = 100_000,
    seed: int = 0,
) -> WeakAdversaryEstimate:
    """Vectorized ``E[L]`` / ``E[U]`` for Protocol W under i.i.d. loss.

    Protocol W's counting is valid-gated (no rfire), which on the pair
    topology is the same recurrence with process 2's rfire gate forced
    open.
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    rng = np.random.default_rng(seed)
    d12, d21 = _sample_deliveries(samples, num_rounds, loss_probability, rng)
    # Force the rfire gate open: reuse the recurrence with f2 = True by
    # marking every round-1 link delivered for gating purposes only.
    counts = _simulate_pair_counts_valid_gated(d12, d21)
    attack_1 = counts.count_1 >= threshold
    attack_2 = counts.count_2 >= threshold
    pr_ta = (attack_1 & attack_2).astype(np.float64)
    pr_pa = (attack_1 ^ attack_2).astype(np.float64)
    return WeakAdversaryEstimate(
        expected_liveness=float(pr_ta.mean()),
        expected_unsafety=float(pr_pa.mean()),
        disagreement_runs=int(np.count_nonzero(pr_pa > 0)),
        samples=samples,
    )


def _simulate_pair_counts_valid_gated(
    delivered_1_to_2: np.ndarray, delivered_2_to_1: np.ndarray
) -> PairCounts:
    """The valid-gated (Protocol W) recurrence: counts track L_i."""
    num_runs, num_rounds = delivered_1_to_2.shape
    c1 = np.ones(num_runs, dtype=np.int64)  # both inputs present
    c2 = np.ones(num_runs, dtype=np.int64)
    for round_number in range(num_rounds):
        d12 = delivered_1_to_2[:, round_number]
        d21 = delivered_2_to_1[:, round_number]
        prev_c1 = c1.copy()
        prev_c2 = c2.copy()
        c1 = np.where(d21 & (prev_c2 >= 1), np.maximum(c1, prev_c2 + 1), c1)
        c2 = np.where(d12 & (prev_c1 >= 1), np.maximum(c2, prev_c1 + 1), c2)
    return PairCounts(
        count_1=c1,
        count_2=c2,
        rfire_heard_2=np.ones(num_runs, dtype=bool),
    )
