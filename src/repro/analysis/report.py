"""Report rendering: the tables and series the experiments emit.

Every experiment produces one or more :class:`Table` objects — the
reproduction's analogue of the paper's (theorem-level) quantitative
claims — and the benchmark harness prints them.  A :class:`Series` is
a table specialized to (x, y…) columns, i.e. figure data; it renders
as text and exports CSV so it can be plotted externally.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float, bool, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or 0 < abs(value) < 1e-4:
            return f"{value:.3e}"
        return f"{value:.6g}"
    return str(value)


@dataclass
class Table:
    """A captioned, column-aligned text table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    caption: str = ""

    def add_row(self, *cells: Cell) -> None:
        """Append one row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_dict_row(self, row: Dict[str, Cell]) -> None:
        """Append a row given as a column-name -> value mapping."""
        self.add_row(*(row.get(column) for column in self.columns))

    def column(self, name: str) -> List[Cell]:
        """All values of one column, in row order."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Aligned plain-text rendering with title and caption."""
        formatted = [[_format_cell(cell) for cell in row] for row in self.rows]
        headers = [str(column) for column in self.columns]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in formatted))
            if formatted
            else len(headers[i])
            for i in range(len(headers))
        ]
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        header_line = "  ".join(
            header.ljust(width) for header, width in zip(headers, widths)
        )
        out.write(header_line.rstrip() + "\n")
        out.write("  ".join("-" * width for width in widths) + "\n")
        for row in formatted:
            line = "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            )
            out.write(line.rstrip() + "\n")
        if self.caption:
            out.write(f"({self.caption})\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated export (quotes cells containing commas)."""
        def escape(text: str) -> str:
            if "," in text or '"' in text:
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(escape(str(column)) for column in self.columns)]
        for row in self.rows:
            lines.append(",".join(escape(_format_cell(cell)) for cell in row))
        return "\n".join(lines) + "\n"

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering for EXPERIMENTS.md."""
        headers = [str(column) for column in self.columns]
        lines = [
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format_cell(cell) for cell in row) + " |"
            )
        return "\n".join(lines) + "\n"


@dataclass
class Series(Table):
    """Figure data: the first column is x, the rest are y series."""

    @property
    def x_label(self) -> str:
        """The x-axis column name (first column)."""
        return str(self.columns[0])

    def y_labels(self) -> List[str]:
        """The y-series column names (all but the first)."""
        return [str(column) for column in self.columns[1:]]


@dataclass
class ExperimentReport:
    """Everything one experiment produced.

    ``passed`` summarizes the experiment's own assertions (every
    theorem-check table verifies its inequalities); ``notes`` records
    certification levels, substitutions, and Monte Carlo sample sizes.
    """

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    passed: bool = True
    notes: List[str] = field(default_factory=list)
    # Machine-readable extras (engine instrumentation, timings) for
    # benchmark artifacts; not part of the rendered text.
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        """Attach a table to the report and return it for filling."""
        self.tables.append(table)
        return table

    def add_note(self, note: str) -> None:
        """Record a free-form provenance note."""
        self.notes.append(note)

    def fail(self, note: str) -> None:
        """Mark the report failed with an explanatory note."""
        self.passed = False
        self.notes.append(f"FAIL: {note}")

    def render(self) -> str:
        """Plain-text rendering: status line, tables, then notes."""
        out = io.StringIO()
        status = "PASS" if self.passed else "FAIL"
        out.write(f"### [{self.experiment_id}] {self.title} — {status}\n\n")
        for table in self.tables:
            out.write(table.render())
            out.write("\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()
