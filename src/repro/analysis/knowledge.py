"""The Halpern–Moses knowledge reading of the level measure.

The paper introduces the level as "a measure of the 'knowledge' [HM] a
process has in a run".  This module makes the connection exact and
checkable: it builds a *semantic* S5 knowledge model over an
exhaustively enumerated run space and verifies that the syntactic
level recursion computes iterated "everyone knows".

**Semantics.**  Fix a topology and horizon and consider the
full-information reading: a process's *view* of a run is everything it
could possibly have observed — which, by Lemma 4.2, is exactly the
clipped run ``Clip_i(R)``.  Then

* ``K_i φ`` holds on ``R`` iff ``φ`` holds on every run with the same
  view for ``i``;
* ``E φ = ∧_i K_i φ`` ("everyone knows");
* ``E^h`` is ``E`` iterated.

**The theorem made executable** (experiment E14): for the stable fact
``φ = "some input signal occurred"``,

    ``E^h(φ)`` holds on ``R``  ⟺  ``L(R) >= h``,

i.e. the paper's level recursion *is* iterated everyone-knowledge.
Since ``L(R) <= N + 1`` always, no run ever attains ``E^h`` for all
``h`` — *common knowledge of the input is unattainable*, which is the
Halpern–Moses impossibility underlying coordinated attack.

The model enumerates the full run space (``2^(2|E|N + m)`` runs), so
it is restricted to small instances; that is what makes the check
*exact* rather than sampled.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.measures import clip, level_profile
from ..core.run import Run, enumerate_runs, run_space_size
from ..core.topology import Topology
from ..core.types import ProcessId, Round

# A fact is a predicate on runs; internally evaluated over the whole
# enumerated space, so it is represented as a run -> bool map.
Fact = Dict[Run, bool]

# Guard: semantic models enumerate the full run space.
DEFAULT_RUN_LIMIT = 5_000


@dataclass
class KnowledgeModel:
    """Semantic S5 knowledge over one (topology, horizon) instance."""

    topology: Topology
    num_rounds: Round
    run_limit: int = DEFAULT_RUN_LIMIT
    _runs: List[Run] = field(init=False, repr=False)
    _view_groups: Dict[ProcessId, Dict[Run, Tuple[Run, ...]]] = field(
        init=False, repr=False
    )

    def __post_init__(self) -> None:
        size = run_space_size(self.topology, self.num_rounds, fixed_inputs=False)
        if size > self.run_limit:
            raise ValueError(
                f"run space of {size} exceeds the knowledge-model limit "
                f"of {self.run_limit}; use a smaller instance"
            )
        self._runs = list(enumerate_runs(self.topology, self.num_rounds))
        self._view_groups = {}
        for process in self.topology.processes:
            by_view: Dict[Run, List[Run]] = defaultdict(list)
            for run in self._runs:
                by_view[clip(run, process)].append(run)
            groups: Dict[Run, Tuple[Run, ...]] = {}
            for members in by_view.values():
                frozen = tuple(members)
                for run in members:
                    groups[run] = frozen
            self._view_groups[process] = groups

    @property
    def runs(self) -> List[Run]:
        """The full run space of the instance."""
        return list(self._runs)

    def fact(self, predicate: Callable[[Run], bool]) -> Fact:
        """Materialize a predicate over the run space."""
        return {run: bool(predicate(run)) for run in self._runs}

    def input_occurred(self) -> Fact:
        """The stable fact ``φ``: some input signal arrived."""
        return self.fact(lambda run: bool(run.inputs))

    def knows(self, process: ProcessId, fact: Fact) -> Fact:
        """``K_i φ``: true where ``φ`` holds on every view-equivalent run."""
        groups = self._view_groups[process]
        return {
            run: all(fact[other] for other in groups[run])
            for run in self._runs
        }

    def everyone_knows(self, fact: Fact) -> Fact:
        """``E φ = ∧_i K_i φ``."""
        per_process = [
            self.knows(process, fact) for process in self.topology.processes
        ]
        return {
            run: all(k[run] for k in per_process) for run in self._runs
        }

    def iterated_everyone_knows(self, fact: Fact, depth: int) -> Fact:
        """``E^depth φ`` (``depth = 0`` returns ``φ`` itself)."""
        if depth < 0:
            raise ValueError("depth must be nonnegative")
        current = fact
        for _ in range(depth):
            current = self.everyone_knows(current)
        return current

    def knowledge_depth(self, run: Run, fact: Fact, max_depth: int) -> int:
        """The largest ``h <= max_depth`` with ``E^h φ`` true on ``run``.

        Returns ``-1`` when the fact itself is false on the run
        (``E^0 φ = φ``).
        """
        if not fact[run]:
            return -1
        current = fact
        depth = 0
        while depth < max_depth:
            current = self.everyone_knows(current)
            if not current[run]:
                break
            depth += 1
        return depth


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of checking ``E^h(input) ⟺ L(R) >= h`` exhaustively."""

    topology: Topology
    num_rounds: Round
    runs_checked: int
    depths_checked: int
    mismatches: int
    max_depth_attained: int

    @property
    def holds(self) -> bool:
        """True iff the equivalence held on every run and depth."""
        return self.mismatches == 0


def check_level_knowledge_equivalence(
    topology: Topology,
    num_rounds: Round,
    max_depth: Optional[int] = None,
    run_limit: int = DEFAULT_RUN_LIMIT,
) -> EquivalenceResult:
    """Exhaustively verify the knowledge reading of the level measure.

    For every run of the instance and every depth ``1..max_depth``
    (default ``N + 2``, one past the attainable maximum), check

        ``E^h("input occurred")``  ⟺  ``L(R) >= h``.

    Also reports the largest depth attained by any run, which equals
    ``N + 1`` — finite, hence common knowledge is never attained.
    """
    model = KnowledgeModel(topology, num_rounds, run_limit)
    if max_depth is None:
        max_depth = num_rounds + 2
    fact = model.input_occurred()
    mismatches = 0
    max_attained = 0
    levels = {
        run: level_profile(run, topology.num_processes).run_level()
        for run in model.runs
    }
    current = fact
    for depth in range(1, max_depth + 1):
        current = model.everyone_knows(current)
        for run in model.runs:
            semantic = current[run]
            syntactic = levels[run] >= depth
            if semantic != syntactic:
                mismatches += 1
            if semantic:
                max_attained = max(max_attained, depth)
    return EquivalenceResult(
        topology=topology,
        num_rounds=num_rounds,
        runs_checked=len(model.runs),
        depths_checked=max_depth,
        mismatches=mismatches,
        max_depth_attained=max_attained,
    )
