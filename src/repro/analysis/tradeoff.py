"""Liveness/unsafety tradeoff frontiers (the abstract's ``L/U <= N``).

The paper's central quantitative message is that against a strong
adversary the ratio of best-case liveness to worst-case unsafety is at
most (roughly) the number of rounds, and that Protocol S achieves it.
This module computes:

* the theoretical frontier ``L/U <= L(R_good) = N + 1``;
* the achieved points of Protocol A (``(U, L) = (1/(N-1), 1)``) and
  Protocol S (``(ε, min(1, ε·(N)))`` on the good run, where
  ``ML(R_good) = N``), measured rather than assumed;
* the Section 8 consequence table (rounds required for a target
  liveness/unsafety pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.run import good_run
from ..core.topology import Topology
from ..core.types import Round
from .bounds import max_level_on_good_run, required_rounds, tradeoff_ratio


@dataclass(frozen=True)
class TradeoffPoint:
    """One protocol's measured position in (U, L, ratio) space."""

    protocol: str
    num_rounds: Round
    unsafety: float
    liveness_good_run: float
    certification: str

    @property
    def ratio(self) -> float:
        """``L(R_good)/U`` — to be compared against ``N + 1``."""
        return tradeoff_ratio(self.liveness_good_run, self.unsafety)

    def within_ceiling(self, tolerance: float = 1e-9) -> bool:
        """The abstract's claim: the ratio never beats ~N."""
        ceiling = max_level_on_good_run(self.num_rounds, 2)
        if self.ratio == float("inf"):
            return False
        return self.ratio <= ceiling + tolerance


def measure_tradeoff_point(
    protocol,
    topology: Topology,
    num_rounds: Round,
    unsafety_result,
) -> TradeoffPoint:
    """Build a tradeoff point from a protocol and a search result.

    ``unsafety_result`` is a :class:`repro.adversary.search.SearchResult`
    from the worst-run search; liveness is evaluated exactly on the
    good run.
    """
    from ..core.probability import evaluate

    run = good_run(topology, num_rounds)
    liveness = evaluate(protocol, topology, run).pr_total_attack
    return TradeoffPoint(
        protocol=protocol.name,
        num_rounds=num_rounds,
        unsafety=unsafety_result.value,
        liveness_good_run=liveness,
        certification=unsafety_result.certification,
    )


def protocol_s_frontier(
    num_rounds: Round, epsilons: Optional[List[float]] = None
) -> List[TradeoffPoint]:
    """Protocol S's analytic frontier for a sweep of ε values.

    On the two-general good run ``ML(R_good) = N``, so liveness is
    ``min(1, ε·N)`` while unsafety is exactly ε (the worst runs achieve
    the Theorem 6.7 bound).  Setting ``ε = 1/N`` yields the extreme
    point: liveness 1 at the minimum possible unsafety.
    """
    if epsilons is None:
        epsilons = [1.0 / num_rounds, 2.0 / num_rounds, 0.5 / num_rounds]
    points = []
    for epsilon in epsilons:
        epsilon = min(1.0, epsilon)
        points.append(
            TradeoffPoint(
                protocol=f"protocol-S(eps={epsilon:g})",
                num_rounds=num_rounds,
                unsafety=epsilon,
                liveness_good_run=min(1.0, epsilon * num_rounds),
                certification="analytic",
            )
        )
    return points


def section_8_requirements_table() -> List[dict]:
    """The Section 8 consequence: target (L, U) -> minimum rounds.

    Includes the paper's own example (liveness 1, error 0.001 ->
    about 1000 rounds).
    """
    targets = [
        (1.0, 0.1),
        (1.0, 0.01),
        (1.0, 0.001),  # the paper's example
        (1.0, 0.0001),
        (0.5, 0.001),
        (0.9, 0.01),
    ]
    rows = []
    for target_liveness, max_unsafety in targets:
        rows.append(
            {
                "target liveness": target_liveness,
                "max unsafety": max_unsafety,
                "rounds required": required_rounds(
                    target_liveness, max_unsafety
                ),
            }
        )
    return rows
