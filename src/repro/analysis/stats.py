"""Small-sample statistics for the Monte Carlo estimators.

Binomial confidence machinery used across the experiments:

* :func:`wilson_interval` — the Wilson score interval for an event
  frequency (better behaved than the normal approximation at the
  extreme probabilities this paper lives at);
* :func:`rule_of_three_upper` — the classic upper bound ``~3/n`` when
  zero events were observed (weak-adversary disagreement counts are
  usually zero);
* :func:`sample_mean_interval` — normal-approximation interval for
  means of bounded quantities (expected liveness over random runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

# Two-sided 95% critical value; callers may override.
DEFAULT_Z = 1.959963984540054


@dataclass(frozen=True)
class ConfidenceInterval:
    """A closed interval with its point estimate."""

    estimate: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    def contains(self, value: float) -> bool:
        """Whether the closed interval covers ``value``."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """``high - low``."""
        return self.high - self.low

    def describe(self) -> str:
        """``estimate [low, high]`` as text."""
        return f"{self.estimate:.6f} [{self.low:.6f}, {self.high:.6f}]"


def wilson_interval(
    successes: int, trials: int, z: float = DEFAULT_Z
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    if trials < 1:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes {successes} out of range 0..{trials}"
        )
    proportion = successes / trials
    z_squared = z * z
    denominator = 1.0 + z_squared / trials
    center = (proportion + z_squared / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            proportion * (1 - proportion) / trials
            + z_squared / (4 * trials * trials)
        )
        / denominator
    )
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    return ConfidenceInterval(estimate=proportion, low=low, high=high)


def rule_of_three_upper(trials: int, confidence: float = 0.95) -> float:
    """Upper confidence bound on a probability after zero observations.

    ``Pr[p > bound] < 1 - confidence`` when ``trials`` independent
    samples all came up negative: ``bound = -ln(1 - confidence) / n``
    (≈ 3/n at 95%).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return min(1.0, -math.log(1.0 - confidence) / trials)


def sample_mean_interval(
    values: Sequence[float], z: float = DEFAULT_Z
) -> ConfidenceInterval:
    """Normal-approximation interval for the mean of a bounded sample."""
    if not values:
        raise ValueError("no samples supplied")
    count = len(values)
    mean = sum(values) / count
    if count == 1:
        return ConfidenceInterval(estimate=mean, low=mean, high=mean)
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    margin = z * math.sqrt(variance / count)
    return ConfidenceInterval(
        estimate=mean, low=mean - margin, high=mean + margin
    )
