"""Analysis: theorem formulas, tradeoff frontiers, independence checks,
statistics, and report rendering."""

from .bounds import (
    FLOAT_TOLERANCE,
    UsualCaseAssumption,
    first_lower_bound,
    lemma_6_1_holds,
    lemma_6_2_holds,
    max_level_on_good_run,
    protocol_a_unsafety,
    required_rounds,
    s_liveness,
    s_unsafety_bound,
    satisfies_first_lower_bound,
    second_lower_bound_ceiling,
    tradeoff_ratio,
    usual_case_assumption,
)
from .knowledge import (
    EquivalenceResult,
    KnowledgeModel,
    check_level_knowledge_equivalence,
)
from .fast_mc import (
    PairCounts,
    fast_protocol_s_weak_estimate,
    fast_protocol_w_weak_estimate,
    simulate_pair_counts,
)
from .independence import (
    JointDecision,
    joint_decision_distribution,
    lemma_a3_constraint,
)
from .placement import PlacementScore, best_coordinator, rank_coordinators
from .report import ExperimentReport, Series, Table
from .stats import (
    ConfidenceInterval,
    rule_of_three_upper,
    sample_mean_interval,
    wilson_interval,
)
from .tradeoff import (
    TradeoffPoint,
    measure_tradeoff_point,
    protocol_s_frontier,
    section_8_requirements_table,
)

__all__ = [
    "ConfidenceInterval",
    "EquivalenceResult",
    "ExperimentReport",
    "FLOAT_TOLERANCE",
    "JointDecision",
    "KnowledgeModel",
    "PairCounts",
    "PlacementScore",
    "Series",
    "Table",
    "TradeoffPoint",
    "UsualCaseAssumption",
    "best_coordinator",
    "check_level_knowledge_equivalence",
    "fast_protocol_s_weak_estimate",
    "fast_protocol_w_weak_estimate",
    "first_lower_bound",
    "joint_decision_distribution",
    "lemma_6_1_holds",
    "lemma_6_2_holds",
    "lemma_a3_constraint",
    "max_level_on_good_run",
    "measure_tradeoff_point",
    "protocol_a_unsafety",
    "protocol_s_frontier",
    "rank_coordinators",
    "required_rounds",
    "rule_of_three_upper",
    "s_liveness",
    "s_unsafety_bound",
    "sample_mean_interval",
    "simulate_pair_counts",
    "satisfies_first_lower_bound",
    "second_lower_bound_ceiling",
    "section_8_requirements_table",
    "tradeoff_ratio",
    "usual_case_assumption",
    "wilson_interval",
]
