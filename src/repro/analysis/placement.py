"""Coordinator placement: where should the rfire-holder sit?

Protocol S designates one process to draw ``rfire``; the paper picks
process 1 "arbitrarily".  On asymmetric graphs the choice matters: the
modified level waits on hearing the coordinator, so a peripheral
coordinator delays every process's count by its distance.  This module
ranks candidate coordinators by the liveness they yield.

The clean structural fact (verified in the tests): on the good run the
modified level of the slowest process is governed by the coordinator's
*eccentricity* — central coordinators certify levels sooner — while
the unsafety guarantee ``U <= ε`` is placement-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.probability import evaluate
from ..core.run import Run, good_run
from ..core.topology import Topology
from ..core.types import ProcessId, Round
from ..protocols.protocol_s import ProtocolS


@dataclass(frozen=True)
class PlacementScore:
    """One candidate coordinator's measured performance."""

    coordinator: ProcessId
    eccentricity: int
    mean_liveness: float
    worst_liveness: float

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"coordinator {self.coordinator}: mean L = "
            f"{self.mean_liveness:.4f}, worst L = {self.worst_liveness:.4f} "
            f"(eccentricity {self.eccentricity})"
        )


def rank_coordinators(
    topology: Topology,
    num_rounds: Round,
    epsilon: float,
    runs: Optional[Sequence[Run]] = None,
) -> List[PlacementScore]:
    """Rank every vertex as Protocol S's coordinator.

    Evaluates exact liveness over the supplied runs (default: the good
    run — the scenario a deployment optimizes for) and sorts by mean
    liveness, best first, breaking ties toward central vertices.
    """
    if runs is None:
        runs = [good_run(topology, num_rounds)]
    if not runs:
        raise ValueError("no runs supplied to score placements on")
    scores = []
    for coordinator in topology.processes:
        protocol = ProtocolS(epsilon=epsilon, coordinator=coordinator)
        liveness_values = [
            evaluate(protocol, topology, run).pr_total_attack for run in runs
        ]
        scores.append(
            PlacementScore(
                coordinator=coordinator,
                eccentricity=topology.eccentricity(coordinator),
                mean_liveness=sum(liveness_values) / len(liveness_values),
                worst_liveness=min(liveness_values),
            )
        )
    scores.sort(
        key=lambda score: (-score.mean_liveness, score.eccentricity)
    )
    return scores


def best_coordinator(
    topology: Topology,
    num_rounds: Round,
    epsilon: float,
    runs: Optional[Sequence[Run]] = None,
) -> ProcessId:
    """The top-ranked coordinator for the given scenario."""
    return rank_coordinators(topology, num_rounds, epsilon, runs)[0].coordinator
