"""Every theorem of the paper as an executable formula.

Experiments and tests compare *measured* quantities against these
functions, so the reproduction and the documentation quote the same
math:

* Theorem 5.4 (first lower bound):
  ``L(F, R) <= U_s(F) · L(R) <= ε · L(R)``;
* Theorem 6.7: ``U_s(S) <= ε``;
* Theorem 6.8: ``L(S, R) >= min(1, ε · ML(R))`` (equality holds);
* Lemma 6.1: ``L_i(R) - 1 <= ML_i(R) <= L_i(R)``;
* Lemma 6.2: ``ML_j(R) >= ML_i(R) - 1``;
* Theorem A.1 (second lower bound), under the usual case assumption:
  no protocol exceeds ``ε · ML(R)`` on one run without dropping below
  it on another;
* Section 8 consequence: liveness 1 with unsafety ``U`` needs at least
  ``1/U`` achievable level, i.e. ``N >= 1/U - 1`` rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..core.topology import Topology
from ..core.types import Round

# Numerical slack for comparing exact closed forms across float paths.
FLOAT_TOLERANCE = 1e-9


def first_lower_bound(unsafety: float, level: int) -> float:
    """Theorem 5.4: the liveness ceiling ``U_s(F) · L(R)``."""
    if unsafety < 0:
        raise ValueError("unsafety must be nonnegative")
    if level < 0:
        raise ValueError("level must be nonnegative")
    return min(1.0, unsafety * level)


def satisfies_first_lower_bound(
    liveness: float,
    unsafety: float,
    level: int,
    tolerance: float = FLOAT_TOLERANCE,
) -> bool:
    """Check ``L(F, R) <= U_s(F) · L(R)`` up to float tolerance."""
    return liveness <= first_lower_bound(unsafety, level) + tolerance


def s_liveness(epsilon: float, modified_level: int) -> float:
    """Theorem 6.8: ``L(S, R) = min(1, ε · ML(R))``."""
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if modified_level < 0:
        raise ValueError("modified level must be nonnegative")
    return min(1.0, epsilon * modified_level)


def s_unsafety_bound(epsilon: float) -> float:
    """Theorem 6.7: ``U_s(S) <= ε``."""
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    return epsilon


def second_lower_bound_ceiling(epsilon: float, modified_level: int) -> float:
    """Theorem A.1: the per-run ceiling ``ε · ML(R)`` no protocol can
    uniformly exceed under the usual case assumption."""
    return s_liveness(epsilon, modified_level)


def lemma_6_1_holds(level: int, modified_level: int) -> bool:
    """``L_i(R) - 1 <= ML_i(R) <= L_i(R)``."""
    return level - 1 <= modified_level <= level


def lemma_6_2_holds(modified_levels: Iterable[int]) -> bool:
    """Any two processes' modified levels differ by at most one."""
    values = list(modified_levels)
    if not values:
        raise ValueError("no modified levels supplied")
    return max(values) - min(values) <= 1


@dataclass(frozen=True)
class UsualCaseAssumption:
    """Appendix A's preconditions for the second lower bound."""

    connected: bool
    diameter_within_rounds: bool
    epsilon_below_half: bool

    @property
    def holds(self) -> bool:
        """All three preconditions satisfied."""
        return (
            self.connected
            and self.diameter_within_rounds
            and self.epsilon_below_half
        )


def usual_case_assumption(
    topology: Topology, num_rounds: Round, epsilon: float
) -> UsualCaseAssumption:
    """Evaluate the usual case assumption for a concrete instance."""
    connected = topology.is_connected()
    diameter_ok = connected and topology.diameter() <= num_rounds
    return UsualCaseAssumption(
        connected=connected,
        diameter_within_rounds=diameter_ok,
        epsilon_below_half=epsilon < 0.5,
    )


def tradeoff_ratio(liveness: float, unsafety: float) -> float:
    """``L/U`` — the quantity the paper proves is at most linear in N.

    Returns ``inf`` when a protocol achieves positive liveness with
    zero unsafety (impossible against the strong adversary, common
    against weak ones — which is the Section 8 point).
    """
    if liveness < 0 or unsafety < 0:
        raise ValueError("liveness and unsafety must be nonnegative")
    if unsafety == 0:
        return math.inf if liveness > 0 else 0.0
    return liveness / unsafety


def max_level_on_good_run(num_rounds: Round, num_processes: int) -> int:
    """``L(R_good)``: the level of the all-delivered, all-input run.

    On any connected graph the level measure gains one height per round
    after the input round, so ``L(R_good) = N + 1``; this is the
    largest level any run can realize, hence the ``L/U <= N`` tradeoff
    quoted in the abstract (up to the +1).
    """
    if num_rounds < 1:
        raise ValueError("num_rounds must be >= 1")
    if num_processes < 2:
        raise ValueError("num_processes must be >= 2")
    return num_rounds + 1


def required_rounds(target_liveness: float, max_unsafety: float) -> int:
    """Section 8: rounds needed for liveness ``L`` with unsafety ``U``.

    From ``L <= U · L(R)`` and ``L(R) <= N + 1``:
    ``N >= L/U - 1``.  The paper's example — liveness 1 with error at
    most 0.001 — gives "at least 1000 rounds" (999 by the exact
    inequality; the paper speaks to leading order).
    """
    if not 0.0 < target_liveness <= 1.0:
        raise ValueError("target liveness must be in (0, 1]")
    if not 0.0 < max_unsafety <= 1.0:
        raise ValueError("max unsafety must be in (0, 1]")
    return max(1, math.ceil(target_liveness / max_unsafety) - 1)


def protocol_a_unsafety(num_rounds: Round) -> float:
    """Section 3's analytic value: ``U_s(A) = 1/(N - 1)``."""
    if num_rounds < 2:
        raise ValueError("Protocol A needs N >= 2")
    return 1.0 / (num_rounds - 1)
