"""Causal vs. probabilistic independence (Appendix A, Lemmas A.2/A.3).

Lemma A.2: if processes ``i`` and ``j`` are *causally independent* in
run ``R`` — no pair ``(k, 0)`` flows to both ``(i, N)`` and
``(j, N)`` — then the decision events ``(D_i | R)`` and ``(D_j | R)``
are probabilistically independent.  The reason is structural: each
local execution is a deterministic function of the tapes of the
processes in its causal past, and causally independent processes have
disjoint causal pasts.

Lemma A.3 adds the agreement constraint: in such a run with
``Pr[D_i | R] = ε < 0.5``, the other process must have
``Pr[D_j | R] = 0``, else ``Pr[PA | R] >= ε + δ(1 - 2ε) > ε``.

This module measures the joint decision distribution of a pair of
processes exactly (finite tape spaces) or by sampling, and reports the
independence gap ``|Pr[D_i D_j] - Pr[D_i]·Pr[D_j]|``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.execution import decide
from ..core.measures import causally_independent
from ..core.protocol import Protocol
from ..core.run import Run
from ..core.seeding import spawn_random
from ..core.topology import Topology
from ..core.types import ProcessId


@dataclass(frozen=True)
class JointDecision:
    """The joint law of ``(D_i, D_j)`` on one run."""

    pr_first: float
    pr_second: float
    pr_both: float
    causally_independent: bool
    method: str
    trials: Optional[int] = None

    @property
    def independence_gap(self) -> float:
        """``|Pr[D_i D_j] - Pr[D_i] Pr[D_j]|`` — zero iff independent."""
        return abs(self.pr_both - self.pr_first * self.pr_second)

    @property
    def pr_disagreement(self) -> float:
        """``Pr[D_i xor D_j]`` — a lower bound on ``Pr[PA | R]``."""
        return self.pr_first + self.pr_second - 2 * self.pr_both


def joint_decision_distribution(
    protocol: Protocol,
    topology: Topology,
    run: Run,
    first: ProcessId,
    second: ProcessId,
    trials: int = 20_000,
    rng: Optional[random.Random] = None,
    enumeration_limit: int = 100_000,
) -> JointDecision:
    """Measure the joint law of two processes' decisions on a run.

    Uses exact enumeration of the tape space when finite and small,
    else Monte Carlo with the given trial budget.
    """
    if first == second:
        raise ValueError("need two distinct processes")
    space = protocol.tape_space(topology)
    size = space.joint_support_size()
    causal = causally_independent(run, first, second)
    if size is not None and size <= enumeration_limit:
        pr_first = pr_second = pr_both = 0.0
        for tapes, weight in space.enumerate():
            outputs = decide(protocol, topology, run, tapes)
            decided_first = outputs[first - 1]
            decided_second = outputs[second - 1]
            if decided_first:
                pr_first += weight
            if decided_second:
                pr_second += weight
            if decided_first and decided_second:
                pr_both += weight
        return JointDecision(
            pr_first, pr_second, pr_both, causal, method="enumeration"
        )
    if rng is None:
        rng = spawn_random(0, "analysis", "independence")
    count_first = count_second = count_both = 0
    for _ in range(trials):
        tapes = space.sample(rng)
        outputs = decide(protocol, topology, run, tapes)
        decided_first = outputs[first - 1]
        decided_second = outputs[second - 1]
        count_first += decided_first
        count_second += decided_second
        count_both += decided_first and decided_second
    return JointDecision(
        count_first / trials,
        count_second / trials,
        count_both / trials,
        causal,
        method="monte-carlo",
        trials=trials,
    )


def lemma_a3_constraint(
    pr_first: float, epsilon: float
) -> Tuple[bool, float]:
    """Lemma A.3's implication for the *other* process.

    Given causal independence and ``Pr[D_i | R] = ε < 0.5``, returns
    ``(applies, forced_value)`` — when it applies, agreement forces
    ``Pr[D_j | R] = 0``.
    """
    applies = abs(pr_first - epsilon) < 1e-9 and epsilon < 0.5
    return applies, 0.0
