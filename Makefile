# Convenience targets for the reproduction repository.

.PHONY: install test lint lint-fast bench serve bench-serve experiments experiments-full artifacts examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# The repo-aware analyzer needs only the package itself; mypy and ruff
# run when installed (pip install -e .[lint]) and are skipped otherwise
# so the target works in minimal environments.  CI always runs all
# three.
lint:
	python -m repro lint src/ tests/
	@if command -v mypy >/dev/null 2>&1; then mypy --strict src/repro/; \
	    else echo "mypy not installed; skipping (pip install -e .[lint])"; fi
	@if command -v ruff >/dev/null 2>&1; then ruff check; \
	    else echo "ruff not installed; skipping (pip install -e .[lint])"; fi

# Inner-loop lint: only files the git working tree touched are
# reported, and phase-1 indexes for everything else come from the
# content-hash cache (.repro-lint-cache.json).
lint-fast:
	python -m repro lint src/ tests/ --changed

bench:
	pytest benchmarks/ --benchmark-only

serve:
	python -m repro serve

bench-serve:
	python -m repro bench-serve --shards 1,2,4 --groups 8
	python scripts/validate_obs_artifacts.py \
	    --bench-serve benchmarks/results/BENCH_serve.json

experiments:
	python -m repro experiments --all --scale quick

experiments-full:
	python -m repro experiments --all --scale full

artifacts:
	bash scripts/regenerate_artifacts.sh

examples:
	for script in examples/*.py; do echo "== $$script =="; python $$script; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results results \
	    src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
