# Convenience targets for the reproduction repository.

.PHONY: install test bench experiments experiments-full artifacts examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro experiments --all --scale quick

experiments-full:
	python -m repro experiments --all --scale full

artifacts:
	bash scripts/regenerate_artifacts.sh

examples:
	for script in examples/*.py; do echo "== $$script =="; python $$script; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results results \
	    src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
